package catalog

import (
	"fmt"
	"strconv"
	"strings"

	"skyloader/internal/htm"
	"skyloader/internal/relstore"
)

// TransformError reports a row that could not be converted into database
// values (malformed numerics, impossible coordinates).  The loader skips such
// rows on the client side, mirroring the validation step of §3.
type TransformError struct {
	Line   int
	Tag    Tag
	Field  string
	Reason string
}

// Error implements the error interface.
func (e *TransformError) Error() string {
	return fmt.Sprintf("catalog: line %d (%s) field %q: %s", e.Line, e.Tag, e.Field, e.Reason)
}

// Transformer converts parsed catalog records into (table, columns, values)
// triples ready for insertion, applying the per-row work the paper describes:
// type conversion, precision adjustment, and computation of derived values
// such as the HTM id and unit-sphere coordinates of each object.
type Transformer struct {
	schema *relstore.Schema
	// HTMDepth is the mesh depth used for object htmids.
	HTMDepth int

	objColumns []string
}

// NewTransformer creates a transformer for the given repository schema.
func NewTransformer(schema *relstore.Schema) *Transformer {
	t := &Transformer{schema: schema, HTMDepth: htm.DefaultDepth}
	layout, _ := LayoutFor(TagOBJ)
	t.objColumns = append(append([]string{}, layout.Fields...), "htmid", "cx", "cy", "cz")
	return t
}

// TransformedRow is the output of transforming one catalog record.
type TransformedRow struct {
	Table   string
	Columns []string
	Values  []relstore.Value
	// Bytes is the serialized size of the source record, used for
	// throughput accounting.
	Bytes int
}

// Transform converts a record into a database row.
func (t *Transformer) Transform(rec Record) (TransformedRow, error) {
	layout, ok := LayoutFor(rec.Tag)
	if !ok {
		return TransformedRow{}, &TransformError{Line: rec.Line, Tag: rec.Tag, Reason: "unknown tag"}
	}
	ts := t.schema.Table(layout.Table)
	if ts == nil {
		return TransformedRow{}, &TransformError{Line: rec.Line, Tag: rec.Tag,
			Reason: fmt.Sprintf("schema has no table %q", layout.Table)}
	}
	if len(rec.Fields) != len(layout.Fields) {
		return TransformedRow{}, &TransformError{Line: rec.Line, Tag: rec.Tag,
			Reason: fmt.Sprintf("expected %d fields, got %d", len(layout.Fields), len(rec.Fields))}
	}

	values := make([]relstore.Value, len(layout.Fields))
	for i, colName := range layout.Fields {
		v, err := t.convertField(ts, colName, rec.Fields[i])
		if err != nil {
			return TransformedRow{}, &TransformError{Line: rec.Line, Tag: rec.Tag, Field: colName, Reason: err.Error()}
		}
		values[i] = v
	}

	row := TransformedRow{
		Table:   layout.Table,
		Columns: layout.Fields,
		Values:  values,
		Bytes:   rec.Bytes(),
	}

	if rec.Tag == TagOBJ {
		derived, err := t.deriveObjectColumns(rec, layout, values)
		if err != nil {
			return TransformedRow{}, err
		}
		row.Columns = t.objColumns
		row.Values = append(values, derived...)
	}
	return row, nil
}

// convertField converts one raw field to the typed value of the destination
// column, applying precision rounding for floats.  Empty fields become NULL.
func (t *Transformer) convertField(ts *relstore.TableSchema, colName, raw string) (relstore.Value, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return relstore.Null, nil
	}
	idx := ts.ColumnIndex(colName)
	if idx < 0 {
		return relstore.Null, fmt.Errorf("table %q has no column %q", ts.Name, colName)
	}
	col := ts.Columns[idx]
	switch col.Type {
	case relstore.TypeInt:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return relstore.Null, fmt.Errorf("not an integer: %q", raw)
		}
		return relstore.Int(n), nil
	case relstore.TypeFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return relstore.Null, fmt.Errorf("not a float: %q", raw)
		}
		if col.Precision > 0 {
			f = relstore.RoundTo(f, col.Precision)
		}
		return relstore.Float(f), nil
	case relstore.TypeBool:
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return relstore.Null, fmt.Errorf("not a boolean: %q", raw)
		}
		return relstore.Bool(b), nil
	default:
		return relstore.Str(raw), nil
	}
}

// deriveObjectColumns computes the htmid and unit-sphere coordinates for an
// OBJ record from its ra/dec fields.
func (t *Transformer) deriveObjectColumns(rec Record, layout TagLayout, values []relstore.Value) ([]relstore.Value, error) {
	raIdx, decIdx := -1, -1
	for i, f := range layout.Fields {
		switch f {
		case "ra":
			raIdx = i
		case "dec":
			decIdx = i
		}
	}
	raV, decV := values[raIdx], values[decIdx]
	if raV.Kind != relstore.KindFloat || decV.Kind != relstore.KindFloat {
		return nil, &TransformError{Line: rec.Line, Tag: rec.Tag, Field: "ra/dec",
			Reason: "object position missing, cannot compute htmid"}
	}
	ra, dec := raV.F, decV.F
	// Positions outside the celestial sphere cannot be assigned an HTM id;
	// the row is kept (the database check constraint rejects it) with a NULL
	// htmid so the error surfaces through the normal recovery path.
	htmVal := relstore.Null
	if ra >= 0 && ra <= 360 && dec >= -90 && dec <= 90 {
		if id, err := htm.Lookup(ra, dec, t.HTMDepth); err == nil {
			htmVal = relstore.Int(id)
		}
	}
	vec := htm.FromRaDec(ra, dec)
	return []relstore.Value{htmVal,
		relstore.Float(relstore.RoundTo(vec.X, 8)),
		relstore.Float(relstore.RoundTo(vec.Y, 8)),
		relstore.Float(relstore.RoundTo(vec.Z, 8))}, nil
}

// ObjectColumns returns the full column list used for object inserts
// (raw fields plus derived htmid/cx/cy/cz).
func (t *Transformer) ObjectColumns() []string { return t.objColumns }
