package catalog

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
)

// GenSpec controls synthetic catalog file generation.
//
// SizeMB is the *nominal* catalog volume the file stands for; the number of
// rows actually generated is SizeMB*RowsPerMB, which keeps the experiments
// laptop-sized while preserving the paper's ratios (EXPERIMENTS.md documents
// the scaling).  The default RowsPerMB of 100 makes the paper's 200 MB test
// file a 20,000-row file.
type GenSpec struct {
	// Name is the file name recorded in load provenance.
	Name string
	// SizeMB is the nominal catalog data volume represented by the file.
	SizeMB float64
	// RowsPerMB scales nominal megabytes to generated rows (default 100).
	RowsPerMB int
	// Seed makes generation deterministic.
	Seed int64
	// ErrorRate is the fraction of detail rows corrupted with one of the
	// error kinds the paper mentions (missing values, invalid values,
	// duplicate keys, orphaned references, malformed numbers).
	ErrorRate float64
	// IDBase offsets every generated primary key so that several files can
	// be loaded into one repository without key collisions.
	IDBase int64
	// RunID is the observing run the observation belongs to (a foreign key
	// into the seeded observing_runs table); 0 leaves it NULL.
	RunID int64
	// CCDsPerFile is the number of CCD columns in the file (the real
	// pipeline wrote 4 CCDs per catalog file); default 4.
	CCDsPerFile int
	// ObjectsPerFrame is the mean number of objects per frame; default 12.
	ObjectsPerFrame int
	// Unsorted, when true, emits child rows before their parents within
	// each frame group (violating the presorting of §4.5.4); used by the
	// ablation studies.
	Unsorted bool
}

func (s GenSpec) withDefaults() GenSpec {
	if s.RowsPerMB <= 0 {
		s.RowsPerMB = 100
	}
	if s.CCDsPerFile <= 0 {
		s.CCDsPerFile = 4
	}
	if s.ObjectsPerFrame <= 0 {
		s.ObjectsPerFrame = 12
	}
	if s.Name == "" {
		s.Name = fmt.Sprintf("catalog_%d_%04.0fMB.cat", s.Seed, s.SizeMB)
	}
	return s
}

// ErrorKind labels the kinds of corruption the generator injects.
type ErrorKind string

// Injected error kinds.
const (
	ErrDuplicateKey ErrorKind = "duplicate_key"
	ErrOutOfRange   ErrorKind = "out_of_range"
	ErrMissingValue ErrorKind = "missing_value"
	ErrOrphanRef    ErrorKind = "orphan_reference"
	ErrMalformed    ErrorKind = "malformed_number"
)

// File is one generated catalog file.
type File struct {
	Name    string
	Spec    GenSpec
	Records []Record
	// RABase/DecBase anchor the file's sky footprint: frames fall in
	// [RABase, RABase+2), objects up to ~0.5 deg further, the observation's
	// region record spans RABase..RABase+2.3 and DecBase..DecBase+0.7.
	// Workload generators aim queries with them (serve.TraceSpec.Boxes).
	RABase, DecBase float64
	// NominalBytes is SizeMB expressed in bytes; it is what the loading
	// experiments use for throughput (MB/s) and staging-time accounting.
	NominalBytes int64
	// ActualBytes is the serialized size of the generated records.
	ActualBytes int64
	// DataRows is the number of generated records.
	DataRows int
	// RowsByTable counts generated records per destination table.
	RowsByTable map[string]int
	// ErrorsInjected counts injected corruptions by kind.
	ErrorsInjected map[ErrorKind]int
}

// TotalInjectedErrors sums the injected corruption counts.
func (f *File) TotalInjectedErrors() int {
	n := 0
	for _, c := range f.ErrorsInjected {
		n += c
	}
	return n
}

// Generate produces one synthetic catalog file according to spec.
func Generate(spec GenSpec) *File {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	g := &generator{
		spec: spec,
		rng:  rng,
		file: &File{
			Name:           spec.Name,
			Spec:           spec,
			NominalBytes:   int64(spec.SizeMB * 1e6),
			RowsByTable:    make(map[string]int),
			ErrorsInjected: make(map[ErrorKind]int),
		},
		nextID: make(map[Tag]int64),
		seen:   make(map[Tag][]string),
	}
	g.run()
	return g.file
}

type generator struct {
	spec   GenSpec
	rng    *rand.Rand
	file   *File
	nextID map[Tag]int64
	// seen keeps previously emitted primary-key field values per tag so that
	// duplicate-key corruption can reuse one.
	seen map[Tag][]string

	obsID   int64
	raBase  float64
	decBase float64
	mjd     float64
}

func (g *generator) id(tag Tag) int64 {
	g.nextID[tag]++
	return g.spec.IDBase + g.nextID[tag]
}

func (g *generator) emit(tag Tag, fields ...string) {
	rec := Record{Tag: tag, Fields: fields}
	table, _ := TableForTag(tag)
	g.file.Records = append(g.file.Records, rec)
	g.file.RowsByTable[table]++
	g.file.DataRows++
	g.file.ActualBytes += int64(rec.Bytes())
	g.seen[tag] = append(g.seen[tag], fields[0])
}

func f2s(v float64, prec int) string { return strconv.FormatFloat(v, 'f', prec, 64) }
func i2s(v int64) string             { return strconv.FormatInt(v, 10) }

// run generates the record stream: one observation header, its parameters and
// region, CCD columns, and per CCD a sequence of frames each followed by its
// aperture/zero-point/astrometry/photometry rows and its objects, each object
// followed by finger/aperture/shape/flag rows — the interleaving described in
// §4.1 of the paper.
func (g *generator) run() {
	spec := g.spec
	targetRows := int(spec.SizeMB * float64(spec.RowsPerMB))
	if targetRows < 30 {
		targetRows = 30
	}

	g.raBase = g.rng.Float64() * 330
	g.decBase = -25 + g.rng.Float64()*50
	g.mjd = 53600 + g.rng.Float64()*400
	g.file.RABase, g.file.DecBase = g.raBase, g.decBase

	// Observation header block.
	g.obsID = g.id(TagOBS)
	runField := ""
	if spec.RunID > 0 {
		runField = i2s(spec.RunID)
	}
	g.emit(TagOBS, i2s(g.obsID), runField, "1",
		f2s(g.mjd, 6), f2s(g.raBase, 6), f2s(g.decBase, 6),
		f2s(1.0+g.rng.Float64()*1.6, 3), pick(g.rng, FilterNames), f2s(60+g.rng.Float64()*120, 2))
	// Parameter names must be distinct within one observation because
	// observation_params carries a unique (obs_id, name) constraint.
	paramNames := []string{"DRIFT_RATE", "FOCUS", "CAMERA_TEMP", "HUMIDITY"}
	firstParam := g.rng.Intn(len(paramNames))
	for i := 0; i < 2; i++ {
		g.emit(TagPRM, i2s(g.id(TagPRM)), i2s(g.obsID),
			paramNames[(firstParam+i)%len(paramNames)],
			f2s(g.rng.Float64()*100, 3))
	}
	g.emit(TagREG, i2s(g.id(TagREG)), i2s(g.obsID),
		f2s(g.raBase, 6), f2s(g.raBase+2.3, 6), f2s(g.decBase, 6), f2s(g.decBase+0.7, 6))

	// CCD columns for this file.
	ccdIDs := make([]int64, spec.CCDsPerFile)
	ccdNums := make([]int64, spec.CCDsPerFile)
	for i := 0; i < spec.CCDsPerFile; i++ {
		ccdIDs[i] = g.id(TagCCD)
		ccdNums[i] = int64(1 + g.rng.Intn(NumCCDsPerInstrument))
		g.emit(TagCCD, i2s(ccdIDs[i]), i2s(g.obsID), i2s(ccdNums[i]), i2s(ccdNums[i]),
			pick(g.rng, FilterNames),
			f2s(g.raBase+float64(i)*0.25, 6), f2s(g.decBase+float64(i)*0.1, 6),
			f2s(2.0+g.rng.Float64(), 3), f2s(4.0+g.rng.Float64()*3, 3))
	}

	// Frames with their detail rows and objects, until the row budget is met.
	ccd := 0
	frameNumber := int64(0)
	for g.file.DataRows < targetRows {
		g.generateFrame(ccdIDs[ccd], frameNumber)
		ccd = (ccd + 1) % spec.CCDsPerFile
		frameNumber++
	}
}

// generateFrame emits one frame and all of its children.
func (g *generator) generateFrame(ccdColID, frameNumber int64) {
	spec := g.spec
	frameID := g.id(TagFRM)
	frameRA := g.raBase + g.rng.Float64()*2.0
	frameDec := g.decBase + g.rng.Float64()*0.6

	frameFields := []string{i2s(frameID), i2s(ccdColID), i2s(frameNumber),
		f2s(g.mjd+float64(frameNumber)*0.0017, 6), f2s(140+g.rng.Float64()*20, 2),
		f2s(0.9+g.rng.Float64()*2.2, 2), f2s(800+g.rng.Float64()*600, 2), f2s(22+g.rng.Float64()*4, 3)}

	objBlocks := g.objectBlocks(frameID, frameRA, frameDec)

	var detail []pendingRec
	for a := int64(1); a <= 4; a++ {
		detail = append(detail, pendingRec{TagAPR, []string{i2s(g.id(TagAPR)), i2s(frameID), i2s(a),
			f2s(1.5*float64(a), 3), f2s(1.0-0.02*float64(a), 4)}})
	}
	detail = append(detail, pendingRec{TagZPT, []string{i2s(g.id(TagZPT)), i2s(frameID),
		f2s(21.5+g.rng.Float64()*2, 4), f2s(0.01+g.rng.Float64()*0.05, 4), f2s(-0.1+g.rng.Float64()*0.2, 4)}})
	detail = append(detail, pendingRec{TagAST, []string{i2s(g.id(TagAST)), i2s(frameID),
		f2s(frameRA, 6), f2s(frameDec, 6),
		f2s(-0.00024, 8), f2s(0.0000012, 8), f2s(0.0000011, 8), f2s(0.00024, 8),
		f2s(0.05+g.rng.Float64()*0.2, 4)}})
	detail = append(detail, pendingRec{TagPHO, []string{i2s(g.id(TagPHO)), i2s(frameID),
		f2s(20.5+g.rng.Float64()*1.5, 3), f2s(0.1+g.rng.Float64()*0.3, 4), f2s(19+g.rng.Float64()*2, 3)}})

	if !spec.Unsorted {
		g.emit(TagFRM, frameFields...)
		for _, d := range detail {
			g.emitMaybeCorrupt(d.tag, d.fields)
		}
		for _, blk := range objBlocks {
			for _, d := range blk {
				g.emitMaybeCorrupt(d.tag, d.fields)
			}
		}
		return
	}
	// Unsorted variant: children of the frame come first, the frame row last,
	// which defeats the parent-before-child presorting assumption.
	for _, blk := range objBlocks {
		for _, d := range blk {
			g.emitMaybeCorrupt(d.tag, d.fields)
		}
	}
	for _, d := range detail {
		g.emitMaybeCorrupt(d.tag, d.fields)
	}
	g.emit(TagFRM, frameFields...)
}

type pendingRec struct {
	tag    Tag
	fields []string
}

// objectBlocks builds the object rows (and their children) for one frame.
func (g *generator) objectBlocks(frameID int64, frameRA, frameDec float64) [][]pendingRec {
	spec := g.spec
	n := spec.ObjectsPerFrame/2 + g.rng.Intn(spec.ObjectsPerFrame)
	blocks := make([][]pendingRec, 0, n)
	for i := 0; i < n; i++ {
		objID := g.id(TagOBJ)
		ra := frameRA + g.rng.Float64()*0.25
		if ra >= 360 {
			ra -= 360
		}
		dec := frameDec + g.rng.Float64()*0.25
		mag := 14 + g.rng.Float64()*8
		blk := []pendingRec{{TagOBJ, []string{i2s(objID), i2s(frameID),
			f2s(ra, 6), f2s(dec, 6), f2s(mag, 3), f2s(0.005+g.rng.Float64()*0.1, 3),
			f2s(1.2+g.rng.Float64()*2, 2), f2s(g.rng.Float64()*0.5, 3), i2s(int64(g.rng.Intn(16)))}}}
		for fng := int64(1); fng <= 4; fng++ {
			blk = append(blk, pendingRec{TagFNG, []string{i2s(g.id(TagFNG)), i2s(objID), i2s(fng),
				f2s(1000*g.rng.Float64(), 4), f2s(10*g.rng.Float64(), 4), f2s(1.5*float64(fng), 3)}})
		}
		blk = append(blk, pendingRec{TagOAP, []string{i2s(g.id(TagOAP)), i2s(objID), i2s(int64(1 + g.rng.Intn(4))),
			f2s(mag+g.rng.Float64()*0.2, 3), f2s(0.01+g.rng.Float64()*0.05, 3)}})
		blk = append(blk, pendingRec{TagSHP, []string{i2s(g.id(TagSHP)), i2s(objID),
			f2s(1+g.rng.Float64()*3, 3), f2s(0.5+g.rng.Float64()*2, 3), f2s(-90+g.rng.Float64()*180, 2),
			f2s(g.rng.Float64(), 3)}})
		if g.rng.Float64() < 0.15 {
			blk = append(blk, pendingRec{TagFLG, []string{i2s(g.id(TagFLG)), i2s(objID),
				i2s(int64(1 + g.rng.Intn(len(QualityFlagNames)))), "1"}})
		}
		blocks = append(blocks, blk)
	}
	return blocks
}

// emitMaybeCorrupt emits a detail record, possibly corrupting it according to
// the configured error rate.
func (g *generator) emitMaybeCorrupt(tag Tag, fields []string) {
	if g.spec.ErrorRate > 0 && g.rng.Float64() < g.spec.ErrorRate {
		fields = g.corrupt(tag, fields)
	}
	g.emit(tag, fields...)
}

// corrupt applies one randomly chosen corruption to the record's fields.
func (g *generator) corrupt(tag Tag, fields []string) []string {
	out := make([]string, len(fields))
	copy(out, fields)
	kind := []ErrorKind{ErrDuplicateKey, ErrOutOfRange, ErrMissingValue, ErrOrphanRef, ErrMalformed}[g.rng.Intn(5)]
	switch kind {
	case ErrDuplicateKey:
		prev := g.seen[tag]
		if len(prev) == 0 {
			return out
		}
		out[0] = prev[g.rng.Intn(len(prev))]
	case ErrOutOfRange:
		// Blow up a numeric field beyond its check-constraint range.
		switch tag {
		case TagOBJ:
			out[4] = "99999.0" // mag far out of range
		case TagFRM:
			out[5] = "500.0" // absurd seeing
		case TagAPR:
			out[3] = "1e6"
		case TagZPT:
			out[2] = "-500"
		case TagSHP:
			out[4] = "7200"
		default:
			if len(out) > 3 {
				out[3] = "9.9e12"
			}
		}
	case ErrMissingValue:
		// Drop a value that feeds a NOT NULL column.
		switch tag {
		case TagOBJ:
			out[2] = "" // ra missing -> htmid cannot be computed
		case TagFRM:
			out[3] = "" // mjd_start missing
		case TagFNG:
			out[3] = "" // flux missing
		default:
			if len(out) > 2 {
				out[2] = ""
			}
		}
	case ErrOrphanRef:
		// Point the parent reference at a key that does not exist.
		if len(out) > 1 {
			out[1] = i2s(g.spec.IDBase + 900000000 + int64(g.rng.Intn(100000)))
		}
	case ErrMalformed:
		if len(out) > 3 {
			out[3] = "N/A"
		} else {
			out[len(out)-1] = "N/A"
		}
	}
	g.file.ErrorsInjected[kind]++
	return out
}

func pick(rng *rand.Rand, options []string) string { return options[rng.Intn(len(options))] }

// WriteTo serializes the file in catalog ASCII form.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	header := fmt.Sprintf("# Palomar-Quest synthetic catalog %s (nominal %.1f MB, %d rows)\n",
		f.Name, f.Spec.SizeMB, f.DataRows)
	c, err := bw.WriteString(header)
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, rec := range f.Records {
		c, err := bw.WriteString(rec.Format() + "\n")
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadRecords parses catalog ASCII from r, returning the parsed records and
// any per-line parse errors (malformed lines are skipped, not fatal).
func ReadRecords(r io.Reader) ([]Record, []error) {
	var recs []Record
	var errs []error
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		rec, err := ParseLine(sc.Text(), lineNo)
		if err != nil {
			if err != ErrSkipLine {
				errs = append(errs, err)
			}
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, err)
	}
	return recs, errs
}

// FilesPerObservation is the number of catalog files the pipeline produces
// per observation (28, one per group of 4 CCDs; §4.4).
const FilesPerObservation = 28

// NightSpec controls generation of a full observation's worth of catalog
// files.
type NightSpec struct {
	// TotalMB is the nominal catalog volume of the whole observation
	// (roughly 15 GB/night in production; experiments use smaller values).
	TotalMB float64
	// RowsPerMB, Seed, ErrorRate and RunID are applied to every file.
	RowsPerMB int
	Seed      int64
	ErrorRate float64
	RunID     int64
	// Skew widens the spread of file sizes; 0 means moderate natural
	// variation (±40%), larger values make the night more unbalanced.
	Skew float64
	// Files overrides the number of files (default FilesPerObservation).
	Files int
}

// GenerateNight produces the catalog files for one observation with varying
// file sizes, the property that motivates the paper's dynamic ("on the fly")
// assignment of files to loader nodes (§4.4).
func GenerateNight(spec NightSpec) []*File {
	if spec.Files <= 0 {
		spec.Files = FilesPerObservation
	}
	if spec.RowsPerMB <= 0 {
		spec.RowsPerMB = 100
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	weights := make([]float64, spec.Files)
	var sum float64
	for i := range weights {
		w := 0.6 + 0.8*rng.Float64() + spec.Skew*rng.ExpFloat64()
		weights[i] = w
		sum += w
	}
	files := make([]*File, spec.Files)
	for i := range files {
		sizeMB := spec.TotalMB * weights[i] / sum
		files[i] = Generate(GenSpec{
			Name:      fmt.Sprintf("night%03d_file%02d.cat", spec.Seed%1000, i+1),
			SizeMB:    sizeMB,
			RowsPerMB: spec.RowsPerMB,
			Seed:      spec.Seed*1000 + int64(i),
			ErrorRate: spec.ErrorRate,
			IDBase:    int64(i+1) * 100_000_000,
			RunID:     spec.RunID,
		})
	}
	return files
}
