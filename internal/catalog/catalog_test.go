package catalog

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"skyloader/internal/relstore"
)

func TestSchemaHas23Tables(t *testing.T) {
	s := NewSchema()
	if s.NumTables() != 23 {
		t.Fatalf("schema has %d tables, want 23 (as in Figure 1)", s.NumTables())
	}
	if len(CatalogTables())+len(ReferenceTables()) != 23 {
		t.Fatalf("catalog (%d) + reference (%d) tables != 23", len(CatalogTables()), len(ReferenceTables()))
	}
	for _, name := range append(CatalogTables(), ReferenceTables()...) {
		if s.Table(name) == nil {
			t.Errorf("table %q missing from schema", name)
		}
	}
}

func TestSchemaTopologicalOrderRespectsHierarchy(t *testing.T) {
	s := NewSchema()
	order, err := s.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	chains := [][2]string{
		{TObservations, TCCDColumns},
		{TCCDColumns, TCCDFrames},
		{TCCDFrames, TObjects},
		{TObjects, TObjectFingers},
		{TObjects, TObjectShapes},
		{TCCDFrames, TFrameApertures},
		{TTelescopes, TObservations},
		{TQualityFlags, TObjectFlags},
	}
	for _, c := range chains {
		if pos[c[0]] >= pos[c[1]] {
			t.Errorf("%s should precede %s in load order", c[0], c[1])
		}
	}
}

func TestSeedReference(t *testing.T) {
	db := relstore.MustOpen(NewSchema())
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := SeedReference(txn, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	counts := db.RowCounts()
	if counts[TCCDs] != NumCCDsPerInstrument {
		t.Fatalf("ccds = %d, want %d", counts[TCCDs], NumCCDsPerInstrument)
	}
	if counts[TFilters] != int64(len(FilterNames)) {
		t.Fatalf("filters = %d", counts[TFilters])
	}
	if counts[TObservingRuns] != 10 {
		t.Fatalf("runs = %d", counts[TObservingRuns])
	}
	if counts[TQualityFlags] != int64(len(QualityFlagNames)) {
		t.Fatalf("quality flags = %d", counts[TQualityFlags])
	}
	if orphans, _ := db.VerifyIntegrity(); orphans != 0 {
		t.Fatalf("reference data has %d orphans", orphans)
	}
	// Default run count applies when numRuns <= 0.
	db2 := relstore.MustOpen(NewSchema())
	txn2, _ := db2.Begin()
	if err := SeedReference(txn2, 0); err != nil {
		t.Fatal(err)
	}
	if n, _ := db2.Count(TObservingRuns); n != 16 {
		t.Fatalf("default runs = %d, want 16", n)
	}
}

func TestTagLayoutsMatchSchema(t *testing.T) {
	s := NewSchema()
	for _, l := range Layouts {
		ts := s.Table(l.Table)
		if ts == nil {
			t.Errorf("tag %s references unknown table %q", l.Tag, l.Table)
			continue
		}
		for _, f := range l.Fields {
			if !ts.HasColumn(f) {
				t.Errorf("tag %s field %q is not a column of %q", l.Tag, f, l.Table)
			}
		}
	}
	if _, ok := LayoutFor(Tag("XXX")); ok {
		t.Error("unknown tag should not resolve")
	}
	if table, ok := TableForTag(TagOBJ); !ok || table != TObjects {
		t.Errorf("TableForTag(OBJ) = %q", table)
	}
}

func TestParseLine(t *testing.T) {
	rec := Record{Tag: TagFNG, Fields: []string{"1", "2", "3", "4.5", "0.1", "2.0"}}
	parsed, err := ParseLine(rec.Format(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Tag != TagFNG || parsed.Line != 7 || len(parsed.Fields) != 6 {
		t.Fatalf("parsed = %+v", parsed)
	}
	if _, err := ParseLine("", 1); err != ErrSkipLine {
		t.Fatalf("blank line: %v", err)
	}
	if _, err := ParseLine("# comment", 1); err != ErrSkipLine {
		t.Fatalf("comment line: %v", err)
	}
	if _, err := ParseLine("ZZZ|1|2", 3); err == nil {
		t.Fatal("unknown tag should fail")
	} else if pe, ok := err.(*ParseError); !ok || pe.Line != 3 {
		t.Fatalf("unexpected error type: %v", err)
	}
	if _, err := ParseLine("OBJ|1|2", 4); err == nil {
		t.Fatal("wrong field count should fail")
	}
}

// TestRecordFormatParseRoundTrip checks Format/ParseLine are inverses for
// arbitrary printable field content without the separator.
func TestRecordFormatParseRoundTrip(t *testing.T) {
	f := func(a, b uint32, s string) bool {
		s = strings.Map(func(r rune) rune {
			if r == '|' || r == '\n' || r == '\r' {
				return '_'
			}
			return r
		}, s)
		rec := Record{Tag: TagPRM, Fields: []string{i2s(int64(a)), i2s(int64(b)), "name", s}}
		parsed, err := ParseLine(rec.Format(), 1)
		if err != nil {
			return false
		}
		if parsed.Tag != rec.Tag || len(parsed.Fields) != len(rec.Fields) {
			return false
		}
		for i := range rec.Fields {
			if parsed.Fields[i] != rec.Fields[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{SizeMB: 5, Seed: 42, ErrorRate: 0.05}
	a := Generate(spec)
	b := Generate(spec)
	if a.DataRows != b.DataRows || len(a.Records) != len(b.Records) {
		t.Fatalf("same seed produced different row counts: %d vs %d", a.DataRows, b.DataRows)
	}
	for i := range a.Records {
		if a.Records[i].Format() != b.Records[i].Format() {
			t.Fatalf("record %d differs between runs", i)
		}
	}
	c := Generate(GenSpec{SizeMB: 5, Seed: 43, ErrorRate: 0.05})
	if c.Records[0].Format() == a.Records[0].Format() {
		t.Error("different seeds should produce different data")
	}
}

func TestGenerateSizeScaling(t *testing.T) {
	small := Generate(GenSpec{SizeMB: 5, Seed: 1})
	large := Generate(GenSpec{SizeMB: 50, Seed: 1})
	if small.DataRows < 500 || large.DataRows < 5000 {
		t.Fatalf("row counts: small=%d large=%d", small.DataRows, large.DataRows)
	}
	// Each frame block adds ~100 rows, so small files overshoot their target
	// slightly; the ratio is close to, but not exactly, 10x.
	ratio := float64(large.DataRows) / float64(small.DataRows)
	if ratio < 7.5 || ratio > 12 {
		t.Fatalf("10x size produced %.1fx rows", ratio)
	}
	if large.NominalBytes != 50_000_000 {
		t.Fatalf("NominalBytes = %d", large.NominalBytes)
	}
	custom := Generate(GenSpec{SizeMB: 2, Seed: 1, RowsPerMB: 500})
	if custom.DataRows < 900 {
		t.Fatalf("RowsPerMB override ignored: %d rows", custom.DataRows)
	}
}

func TestGenerateStructure(t *testing.T) {
	f := Generate(GenSpec{SizeMB: 5, Seed: 7})
	if f.RowsByTable[TObservations] != 1 {
		t.Fatalf("observations = %d, want 1", f.RowsByTable[TObservations])
	}
	if f.RowsByTable[TCCDColumns] != 4 {
		t.Fatalf("ccd_columns = %d, want 4", f.RowsByTable[TCCDColumns])
	}
	frames := f.RowsByTable[TCCDFrames]
	if frames == 0 {
		t.Fatal("no frames generated")
	}
	if f.RowsByTable[TFrameApertures] != 4*frames {
		t.Fatalf("apertures = %d, want 4x frames (%d)", f.RowsByTable[TFrameApertures], frames)
	}
	objects := f.RowsByTable[TObjects]
	if f.RowsByTable[TObjectFingers] != 4*objects {
		t.Fatalf("fingers = %d, want 4x objects (%d)", f.RowsByTable[TObjectFingers], objects)
	}
	if f.TotalInjectedErrors() != 0 {
		t.Fatal("error-free spec injected errors")
	}
	// The first record must be the observation header (presorted output).
	if f.Records[0].Tag != TagOBS {
		t.Fatalf("first record tag = %s", f.Records[0].Tag)
	}
}

func TestGenerateErrorInjection(t *testing.T) {
	f := Generate(GenSpec{SizeMB: 10, Seed: 11, ErrorRate: 0.10})
	total := f.TotalInjectedErrors()
	if total == 0 {
		t.Fatal("no errors injected at 10% rate")
	}
	frac := float64(total) / float64(f.DataRows)
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("injected fraction = %.3f, want ~0.10", frac)
	}
	kinds := 0
	for _, n := range f.ErrorsInjected {
		if n > 0 {
			kinds++
		}
	}
	if kinds < 3 {
		t.Fatalf("only %d error kinds injected", kinds)
	}
}

func TestGenerateUnsorted(t *testing.T) {
	f := Generate(GenSpec{SizeMB: 2, Seed: 5, Unsorted: true})
	// In unsorted mode some child rows (e.g. OBJ) must appear before their
	// parent FRM row.
	firstFRM, firstOBJ := -1, -1
	for i, r := range f.Records {
		if r.Tag == TagFRM && firstFRM < 0 {
			firstFRM = i
		}
		if r.Tag == TagOBJ && firstOBJ < 0 {
			firstOBJ = i
		}
	}
	if firstFRM < firstOBJ {
		t.Fatal("unsorted mode still emitted the frame before its objects")
	}
}

func TestWriteToAndReadRecords(t *testing.T) {
	f := Generate(GenSpec{SizeMB: 3, Seed: 9, ErrorRate: 0.02})
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	recs, errs := ReadRecords(&buf)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	if len(recs) != len(f.Records) {
		t.Fatalf("read %d records, want %d", len(recs), len(f.Records))
	}
	for i := range recs {
		if recs[i].Format() != f.Records[i].Format() {
			t.Fatalf("record %d mismatch after round trip", i)
		}
	}
	// Malformed lines are reported but do not abort.
	recs2, errs2 := ReadRecords(strings.NewReader("OBS|1\nFNG|1|2|3|4|5|6\n"))
	if len(recs2) != 1 || len(errs2) != 1 {
		t.Fatalf("partial parse: %d records, %d errors", len(recs2), len(errs2))
	}
}

func TestGenerateNight(t *testing.T) {
	files := GenerateNight(NightSpec{TotalMB: 140, Seed: 3, RowsPerMB: 50, RunID: 1})
	if len(files) != FilesPerObservation {
		t.Fatalf("files = %d, want %d", len(files), FilesPerObservation)
	}
	var total float64
	min, max := files[0].Spec.SizeMB, files[0].Spec.SizeMB
	ids := map[int64]bool{}
	for _, f := range files {
		total += f.Spec.SizeMB
		if f.Spec.SizeMB < min {
			min = f.Spec.SizeMB
		}
		if f.Spec.SizeMB > max {
			max = f.Spec.SizeMB
		}
		if ids[f.Spec.IDBase] {
			t.Fatal("duplicate IDBase across files")
		}
		ids[f.Spec.IDBase] = true
	}
	if total < 139 || total > 141 {
		t.Fatalf("total night size = %.1f MB, want ~140", total)
	}
	if max/min < 1.2 {
		t.Fatalf("file sizes do not vary: min=%.1f max=%.1f", min, max)
	}
	few := GenerateNight(NightSpec{TotalMB: 10, Seed: 3, Files: 4})
	if len(few) != 4 {
		t.Fatalf("override file count = %d", len(few))
	}
}

func TestTransformBasicTags(t *testing.T) {
	s := NewSchema()
	tr := NewTransformer(s)
	rec := Record{Tag: TagFNG, Fields: []string{"10", "20", "1", "100.5", "0.1", "3.0"}, Line: 12}
	row, err := tr.Transform(rec)
	if err != nil {
		t.Fatal(err)
	}
	if row.Table != TObjectFingers || len(row.Columns) != 6 || len(row.Values) != 6 {
		t.Fatalf("row = %+v", row)
	}
	if row.Values[0] != relstore.Int(10) || row.Values[3] != relstore.Float(100.5) {
		t.Fatalf("values = %v", row.Values)
	}
	if row.Bytes != rec.Bytes() {
		t.Fatalf("Bytes = %d, want %d", row.Bytes, rec.Bytes())
	}
}

func TestTransformNullAndPrecision(t *testing.T) {
	s := NewSchema()
	tr := NewTransformer(s)
	// seeing_arcsec has precision 2; empty sky_level becomes NULL.
	rec := Record{Tag: TagFRM, Fields: []string{"1", "2", "0", "53600.123456789", "145.00", "1.23456", "", "23.5"}}
	row, err := tr.Transform(rec)
	if err != nil {
		t.Fatal(err)
	}
	seeing := row.Values[5].Float()
	if seeing != 1.23 {
		t.Fatalf("precision not applied: %v", seeing)
	}
	if !row.Values[6].IsNull() {
		t.Fatalf("empty field should be NULL, got %v", row.Values[6])
	}
}

func TestTransformObjectDerivedColumns(t *testing.T) {
	s := NewSchema()
	tr := NewTransformer(s)
	rec := Record{Tag: TagOBJ, Fields: []string{"1", "2", "187.25", "2.05", "18.2", "0.02", "1.5", "0.1", "3"}}
	row, err := tr.Transform(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Columns) != 13 {
		t.Fatalf("object columns = %d, want 13 (9 raw + htmid/cx/cy/cz)", len(row.Columns))
	}
	htmid := row.Values[9]
	if htmid.Kind != relstore.KindInt || htmid.I < 8 {
		t.Fatalf("htmid = %v", row.Values[9])
	}
	cx := row.Values[10].Float()
	cy := row.Values[11].Float()
	cz := row.Values[12].Float()
	norm := cx*cx + cy*cy + cz*cz
	if norm < 0.999 || norm > 1.001 {
		t.Fatalf("unit vector norm^2 = %v", norm)
	}
}

func TestTransformErrors(t *testing.T) {
	s := NewSchema()
	tr := NewTransformer(s)
	cases := []Record{
		{Tag: Tag("XXX"), Fields: []string{"1"}},
		{Tag: TagFNG, Fields: []string{"1", "2"}},                                   // wrong arity
		{Tag: TagFNG, Fields: []string{"1", "2", "1", "N/A", "0.1", "3.0"}},         // malformed float
		{Tag: TagOBJ, Fields: []string{"x", "2", "10", "10", "18", "", "", "", ""}}, // malformed int
		{Tag: TagOBJ, Fields: []string{"1", "2", "", "2.05", "18", "", "", "", ""}}, // missing ra
		{Tag: TagOBJ, Fields: []string{"1", "2", "10", "", "18", "", "", "", ""}},   // missing dec
	}
	for i, rec := range cases {
		if _, err := tr.Transform(rec); err == nil {
			t.Errorf("case %d: expected transform error", i)
		}
	}
	// Out-of-range coordinates survive the transform (the database check
	// constraint rejects them later) but produce a NULL htmid.
	row, err := tr.Transform(Record{Tag: TagOBJ, Fields: []string{"1", "2", "10", "123.0", "18", "", "", "", ""}})
	if err != nil {
		t.Fatalf("out-of-range dec should not fail the transform: %v", err)
	}
	if !row.Values[9].IsNull() {
		t.Fatalf("htmid for invalid position = %v, want NULL", row.Values[9])
	}
}

// TestGeneratedFilesTransformCleanly checks that every record of an
// error-free generated file transforms without client-side errors.
func TestGeneratedFilesTransformCleanly(t *testing.T) {
	s := NewSchema()
	tr := NewTransformer(s)
	f := Generate(GenSpec{SizeMB: 5, Seed: 21})
	for _, rec := range f.Records {
		if _, err := tr.Transform(rec); err != nil {
			t.Fatalf("record %q failed: %v", rec.Format(), err)
		}
	}
}
