// Package catalog defines the Palomar-Quest repository data model, the
// interleaved catalog file format produced by the image-extraction pipeline,
// a parser and per-row transformer, and a deterministic synthetic generator.
//
// The real Palomar-Quest catalog files are derived from raw CCD images and
// archived in a mass storage system; we do not have them, so the generator
// produces files with the same *structure*: tagged ASCII rows for many
// destination tables interleaved in one file (a frame row followed by its
// four aperture rows, an object row followed by its four finger rows, and so
// on), a hierarchy joined by primary/foreign keys, occasional missing or
// invalid values, and 28 files of varying size per observation.
package catalog

import (
	"skyloader/internal/relstore"
)

func fptr(v float64) *float64 { return &v }

// Table names of the repository data model (23 tables, matching the count of
// Figure 1 in the paper).  The central hierarchy the catalog files populate is
//
//	observations -> ccd_columns -> ccd_frames -> objects -> (fingers, ...)
//
// plus frame-level detail tables and a set of static reference tables.
const (
	TObservations      = "observations"
	TObservationParams = "observation_params"
	TSkyRegions        = "sky_regions"
	TCCDColumns        = "ccd_columns"
	TCCDFrames         = "ccd_frames"
	TFrameApertures    = "ccd_frame_apertures"
	TFrameZeroPoints   = "frame_zero_points"
	TFrameAstrometry   = "frame_astrometry"
	TFramePhotometry   = "frame_photometry"
	TObjects           = "objects"
	TObjectFingers     = "object_fingers"
	TObjectApertures   = "object_apertures"
	TObjectShapes      = "object_shapes"
	TObjectFlags       = "object_flags"

	TTelescopes       = "telescopes"
	TInstruments      = "instruments"
	TCCDs             = "ccds"
	TFilters          = "filters"
	TObservingRuns    = "observing_runs"
	TPipelineVersions = "pipeline_versions"
	TQualityFlags     = "quality_flags"
	TLoadRuns         = "load_runs"
	TLoadErrors       = "load_errors"
)

// NewSchema builds the full 23-table repository schema with its primary keys,
// foreign keys, uniqueness and check constraints.
func NewSchema() *relstore.Schema {
	intCol := func(name string) relstore.Column { return relstore.Column{Name: name, Type: relstore.TypeInt} }
	nintCol := func(name string) relstore.Column {
		return relstore.Column{Name: name, Type: relstore.TypeInt, Nullable: true}
	}
	fltCol := func(name string, prec int) relstore.Column {
		return relstore.Column{Name: name, Type: relstore.TypeFloat, Precision: prec}
	}
	nfltCol := func(name string, prec int) relstore.Column {
		return relstore.Column{Name: name, Type: relstore.TypeFloat, Nullable: true, Precision: prec}
	}
	strCol := func(name string) relstore.Column { return relstore.Column{Name: name, Type: relstore.TypeString} }
	nstrCol := func(name string) relstore.Column {
		return relstore.Column{Name: name, Type: relstore.TypeString, Nullable: true}
	}

	tables := []*relstore.TableSchema{
		// ---------- static reference tables ----------
		{
			Name:       TTelescopes,
			Columns:    []relstore.Column{intCol("telescope_id"), strCol("name"), strCol("site"), fltCol("aperture_m", 2)},
			PrimaryKey: []string{"telescope_id"},
		},
		{
			Name:       TInstruments,
			Columns:    []relstore.Column{intCol("instrument_id"), intCol("telescope_id"), strCol("name"), intCol("num_ccds")},
			PrimaryKey: []string{"instrument_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_instr_tel", Columns: []string{"telescope_id"}, RefTable: TTelescopes, RefColumns: []string{"telescope_id"}},
			},
		},
		{
			Name: TCCDs,
			Columns: []relstore.Column{
				intCol("ccd_id"), intCol("instrument_id"), intCol("ccd_number"),
				intCol("cols"), intCol("rows"), fltCol("pixel_scale", 4),
			},
			PrimaryKey: []string{"ccd_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_ccd_instr", Columns: []string{"instrument_id"}, RefTable: TInstruments, RefColumns: []string{"instrument_id"}},
			},
			Uniques: []relstore.UniqueConstraint{{Name: "uq_ccd_number", Columns: []string{"instrument_id", "ccd_number"}}},
		},
		{
			Name:       TFilters,
			Columns:    []relstore.Column{intCol("filter_id"), strCol("name"), fltCol("wavelength_nm", 1), fltCol("bandwidth_nm", 1)},
			PrimaryKey: []string{"filter_id"},
			Uniques:    []relstore.UniqueConstraint{{Name: "uq_filter_name", Columns: []string{"name"}}},
		},
		{
			Name: TObservingRuns,
			Columns: []relstore.Column{
				intCol("run_id"), intCol("telescope_id"), strCol("night"), nstrCol("observer"),
			},
			PrimaryKey: []string{"run_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_run_tel", Columns: []string{"telescope_id"}, RefTable: TTelescopes, RefColumns: []string{"telescope_id"}},
			},
		},
		{
			Name:       TPipelineVersions,
			Columns:    []relstore.Column{intCol("pipeline_id"), strCol("name"), strCol("version"), nstrCol("notes")},
			PrimaryKey: []string{"pipeline_id"},
		},
		{
			Name:       TQualityFlags,
			Columns:    []relstore.Column{intCol("flag_id"), strCol("name"), nstrCol("description")},
			PrimaryKey: []string{"flag_id"},
			Uniques:    []relstore.UniqueConstraint{{Name: "uq_flag_name", Columns: []string{"name"}}},
		},
		{
			Name: TLoadRuns,
			Columns: []relstore.Column{
				intCol("load_run_id"), strCol("source_file"), intCol("loader_node"),
				nintCol("rows_loaded"), nintCol("rows_skipped"),
			},
			PrimaryKey: []string{"load_run_id"},
		},
		{
			Name: TLoadErrors,
			Columns: []relstore.Column{
				intCol("load_error_id"), intCol("load_run_id"), intCol("line_number"),
				strCol("target_table"), strCol("reason"),
			},
			PrimaryKey: []string{"load_error_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_lerr_run", Columns: []string{"load_run_id"}, RefTable: TLoadRuns, RefColumns: []string{"load_run_id"}},
			},
		},

		// ---------- observation hierarchy ----------
		{
			Name: TObservations,
			Columns: []relstore.Column{
				intCol("obs_id"), nintCol("run_id"), intCol("telescope_id"),
				fltCol("mjd_start", 6), fltCol("ra_center", 6), fltCol("dec_center", 6),
				fltCol("airmass", 3), strCol("filter_set"), nfltCol("exposure_s", 2),
			},
			PrimaryKey: []string{"obs_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_obs_run", Columns: []string{"run_id"}, RefTable: TObservingRuns, RefColumns: []string{"run_id"}},
				{Name: "fk_obs_tel", Columns: []string{"telescope_id"}, RefTable: TTelescopes, RefColumns: []string{"telescope_id"}},
			},
			Checks: []relstore.CheckConstraint{
				{Name: "ck_obs_ra", Column: "ra_center", Min: fptr(0), Max: fptr(360)},
				{Name: "ck_obs_dec", Column: "dec_center", Min: fptr(-90), Max: fptr(90)},
				{Name: "ck_obs_airmass", Column: "airmass", Min: fptr(0.9), Max: fptr(40)},
			},
		},
		{
			Name: TObservationParams,
			Columns: []relstore.Column{
				intCol("param_id"), intCol("obs_id"), strCol("name"), strCol("value"),
			},
			PrimaryKey: []string{"param_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_prm_obs", Columns: []string{"obs_id"}, RefTable: TObservations, RefColumns: []string{"obs_id"}},
			},
			Uniques: []relstore.UniqueConstraint{{Name: "uq_prm", Columns: []string{"obs_id", "name"}}},
		},
		{
			Name: TSkyRegions,
			Columns: []relstore.Column{
				intCol("region_id"), intCol("obs_id"),
				fltCol("ra_min", 6), fltCol("ra_max", 6), fltCol("dec_min", 6), fltCol("dec_max", 6),
			},
			PrimaryKey: []string{"region_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_reg_obs", Columns: []string{"obs_id"}, RefTable: TObservations, RefColumns: []string{"obs_id"}},
			},
			Checks: []relstore.CheckConstraint{
				{Name: "ck_reg_ra_min", Column: "ra_min", Min: fptr(0), Max: fptr(360)},
				{Name: "ck_reg_dec_min", Column: "dec_min", Min: fptr(-90), Max: fptr(90)},
			},
		},
		{
			Name: TCCDColumns,
			Columns: []relstore.Column{
				intCol("ccd_col_id"), intCol("obs_id"), intCol("ccd_id"), intCol("ccd_number"),
				strCol("filter"), fltCol("ra_center", 6), fltCol("dec_center", 6),
				nfltCol("gain", 3), nfltCol("read_noise", 3),
			},
			PrimaryKey: []string{"ccd_col_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_ccdcol_obs", Columns: []string{"obs_id"}, RefTable: TObservations, RefColumns: []string{"obs_id"}},
				{Name: "fk_ccdcol_ccd", Columns: []string{"ccd_id"}, RefTable: TCCDs, RefColumns: []string{"ccd_id"}},
			},
			Checks: []relstore.CheckConstraint{
				{Name: "ck_ccdcol_ra", Column: "ra_center", Min: fptr(0), Max: fptr(360)},
				{Name: "ck_ccdcol_dec", Column: "dec_center", Min: fptr(-90), Max: fptr(90)},
			},
		},
		{
			Name: TCCDFrames,
			Columns: []relstore.Column{
				intCol("frame_id"), intCol("ccd_col_id"), intCol("frame_number"),
				fltCol("mjd_start", 6), fltCol("exposure_s", 2), nfltCol("seeing_arcsec", 2),
				nfltCol("sky_level", 2), nfltCol("zero_point", 3),
			},
			PrimaryKey: []string{"frame_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_frm_ccdcol", Columns: []string{"ccd_col_id"}, RefTable: TCCDColumns, RefColumns: []string{"ccd_col_id"}},
			},
			Checks: []relstore.CheckConstraint{
				{Name: "ck_frm_exposure", Column: "exposure_s", Min: fptr(0), Max: fptr(7200)},
				{Name: "ck_frm_seeing", Column: "seeing_arcsec", Min: fptr(0), Max: fptr(30)},
			},
		},
		{
			Name: TFrameApertures,
			Columns: []relstore.Column{
				intCol("aperture_id"), intCol("frame_id"), intCol("aperture_number"),
				fltCol("radius_arcsec", 3), nfltCol("flux_correction", 4),
			},
			PrimaryKey: []string{"aperture_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_apr_frm", Columns: []string{"frame_id"}, RefTable: TCCDFrames, RefColumns: []string{"frame_id"}},
			},
			Uniques: []relstore.UniqueConstraint{{Name: "uq_apr", Columns: []string{"frame_id", "aperture_number"}}},
			Checks: []relstore.CheckConstraint{
				{Name: "ck_apr_radius", Column: "radius_arcsec", Min: fptr(0), Max: fptr(120)},
			},
		},
		{
			Name: TFrameZeroPoints,
			Columns: []relstore.Column{
				intCol("zp_id"), intCol("frame_id"), fltCol("mag_zero", 4),
				nfltCol("zp_error", 4), nfltCol("color_term", 4),
			},
			PrimaryKey: []string{"zp_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_zpt_frm", Columns: []string{"frame_id"}, RefTable: TCCDFrames, RefColumns: []string{"frame_id"}},
			},
			Checks: []relstore.CheckConstraint{
				{Name: "ck_zpt_mag", Column: "mag_zero", Min: fptr(10), Max: fptr(40)},
			},
		},
		{
			Name: TFrameAstrometry,
			Columns: []relstore.Column{
				intCol("ast_id"), intCol("frame_id"),
				fltCol("crval1", 6), fltCol("crval2", 6),
				fltCol("cd1_1", 8), fltCol("cd1_2", 8), fltCol("cd2_1", 8), fltCol("cd2_2", 8),
				nfltCol("rms_arcsec", 4),
			},
			PrimaryKey: []string{"ast_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_ast_frm", Columns: []string{"frame_id"}, RefTable: TCCDFrames, RefColumns: []string{"frame_id"}},
			},
		},
		{
			Name: TFramePhotometry,
			Columns: []relstore.Column{
				intCol("pho_id"), intCol("frame_id"), fltCol("mag_limit", 3),
				nfltCol("extinction", 4), nfltCol("sky_brightness", 3),
			},
			PrimaryKey: []string{"pho_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_pho_frm", Columns: []string{"frame_id"}, RefTable: TCCDFrames, RefColumns: []string{"frame_id"}},
			},
		},
		{
			Name: TObjects,
			Columns: []relstore.Column{
				intCol("object_id"), intCol("frame_id"),
				fltCol("ra", 6), fltCol("dec", 6), intCol("htmid"),
				fltCol("cx", 8), fltCol("cy", 8), fltCol("cz", 8),
				fltCol("mag", 3), nfltCol("mag_err", 3),
				nfltCol("fwhm", 2), nfltCol("ellipticity", 3), nintCol("flags"),
			},
			PrimaryKey: []string{"object_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_obj_frm", Columns: []string{"frame_id"}, RefTable: TCCDFrames, RefColumns: []string{"frame_id"}},
			},
			Checks: []relstore.CheckConstraint{
				{Name: "ck_obj_ra", Column: "ra", Min: fptr(0), Max: fptr(360)},
				{Name: "ck_obj_dec", Column: "dec", Min: fptr(-90), Max: fptr(90)},
				{Name: "ck_obj_mag", Column: "mag", Min: fptr(-5), Max: fptr(35)},
			},
		},
		{
			Name: TObjectFingers,
			Columns: []relstore.Column{
				intCol("finger_id"), intCol("object_id"), intCol("finger_number"),
				fltCol("flux", 4), nfltCol("flux_err", 4), nfltCol("radius_arcsec", 3),
			},
			PrimaryKey: []string{"finger_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_fng_obj", Columns: []string{"object_id"}, RefTable: TObjects, RefColumns: []string{"object_id"}},
			},
			Uniques: []relstore.UniqueConstraint{{Name: "uq_fng", Columns: []string{"object_id", "finger_number"}}},
		},
		{
			Name: TObjectApertures,
			Columns: []relstore.Column{
				intCol("oap_id"), intCol("object_id"), intCol("aperture_number"),
				fltCol("mag", 3), nfltCol("mag_err", 3),
			},
			PrimaryKey: []string{"oap_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_oap_obj", Columns: []string{"object_id"}, RefTable: TObjects, RefColumns: []string{"object_id"}},
			},
			Checks: []relstore.CheckConstraint{
				{Name: "ck_oap_mag", Column: "mag", Min: fptr(-5), Max: fptr(40)},
			},
		},
		{
			Name: TObjectShapes,
			Columns: []relstore.Column{
				intCol("shape_id"), intCol("object_id"),
				fltCol("semi_major", 3), fltCol("semi_minor", 3), fltCol("theta_deg", 2),
				nfltCol("class_star", 3),
			},
			PrimaryKey: []string{"shape_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_shp_obj", Columns: []string{"object_id"}, RefTable: TObjects, RefColumns: []string{"object_id"}},
			},
			Checks: []relstore.CheckConstraint{
				{Name: "ck_shp_theta", Column: "theta_deg", Min: fptr(-180), Max: fptr(180)},
			},
		},
		{
			Name: TObjectFlags,
			Columns: []relstore.Column{
				intCol("oflag_id"), intCol("object_id"), intCol("flag_id"), nstrCol("value"),
			},
			PrimaryKey: []string{"oflag_id"},
			ForeignKeys: []relstore.ForeignKey{
				{Name: "fk_oflg_obj", Columns: []string{"object_id"}, RefTable: TObjects, RefColumns: []string{"object_id"}},
				{Name: "fk_oflg_flag", Columns: []string{"flag_id"}, RefTable: TQualityFlags, RefColumns: []string{"flag_id"}},
			},
		},
	}
	return relstore.MustSchema(tables...)
}

// CatalogTables lists the tables populated from catalog files, in the
// parent-before-child order the generator emits them.
func CatalogTables() []string {
	return []string{
		TObservations, TObservationParams, TSkyRegions, TCCDColumns,
		TCCDFrames, TFrameApertures, TFrameZeroPoints, TFrameAstrometry, TFramePhotometry,
		TObjects, TObjectFingers, TObjectApertures, TObjectShapes, TObjectFlags,
	}
}

// ReferenceTables lists the static reference tables populated by
// SeedReference rather than by the catalog files.
func ReferenceTables() []string {
	return []string{
		TTelescopes, TInstruments, TCCDs, TFilters, TObservingRuns,
		TPipelineVersions, TQualityFlags, TLoadRuns, TLoadErrors,
	}
}

// NumCCDsPerInstrument matches the 112-CCD QUEST camera.
const NumCCDsPerInstrument = 112

// FilterNames are the photometric bands seeded into the filters table.
var FilterNames = []string{"U", "B", "R", "I", "Z", "G", "RI", "IZ"}

// QualityFlagNames are the object quality flags seeded into quality_flags.
var QualityFlagNames = []string{"SATURATED", "BLENDED", "EDGE", "COSMIC_RAY", "VARIABLE", "MOVING"}

// SeedReference populates the static reference tables (telescopes,
// instruments, the 112 CCDs, filters, observing runs, pipeline versions and
// quality flags) through the given transaction.  Loading proper assumes these
// rows exist, exactly as the production repository's metadata tables with
// "less than 100 rows" (§4.1) were populated ahead of catalog loading.
func SeedReference(txn *relstore.Txn, numRuns int) error {
	if numRuns <= 0 {
		numRuns = 16
	}
	ins := func(table string, cols []string, vals []relstore.Value) error {
		_, err := txn.Insert(table, cols, vals)
		return err
	}
	if err := ins(TTelescopes,
		[]string{"telescope_id", "name", "site", "aperture_m"},
		[]relstore.Value{relstore.Int(1), relstore.Str("Oschin 48-inch Schmidt"), relstore.Str("Palomar Observatory"), relstore.Float(1.22)}); err != nil {
		return err
	}
	if err := ins(TInstruments,
		[]string{"instrument_id", "telescope_id", "name", "num_ccds"},
		[]relstore.Value{relstore.Int(1), relstore.Int(1), relstore.Str("QUEST-II Camera"), relstore.Int(NumCCDsPerInstrument)}); err != nil {
		return err
	}
	for i := 1; i <= NumCCDsPerInstrument; i++ {
		if err := ins(TCCDs,
			[]string{"ccd_id", "instrument_id", "ccd_number", "cols", "rows", "pixel_scale"},
			[]relstore.Value{relstore.Int(int64(i)), relstore.Int(1), relstore.Int(int64(i)), relstore.Int(600), relstore.Int(2400), relstore.Float(0.87)}); err != nil {
			return err
		}
	}
	for i, name := range FilterNames {
		if err := ins(TFilters,
			[]string{"filter_id", "name", "wavelength_nm", "bandwidth_nm"},
			[]relstore.Value{relstore.Int(int64(i + 1)), relstore.Str(name), relstore.Float(350.0 + 60*float64(i)), relstore.Float(80.0)}); err != nil {
			return err
		}
	}
	for r := 1; r <= numRuns; r++ {
		if err := ins(TObservingRuns,
			[]string{"run_id", "telescope_id", "night", "observer"},
			[]relstore.Value{relstore.Int(int64(r)), relstore.Int(1), relstore.Str(nightName(r)), relstore.Str("QUEST robotic scheduler")}); err != nil {
			return err
		}
	}
	for i, v := range []string{"1.0", "1.1", "2.0"} {
		if err := ins(TPipelineVersions,
			[]string{"pipeline_id", "name", "version", "notes"},
			[]relstore.Value{relstore.Int(int64(i + 1)), relstore.Str("yale-extract"), relstore.Str(v), relstore.Null}); err != nil {
			return err
		}
	}
	for i, name := range QualityFlagNames {
		if err := ins(TQualityFlags,
			[]string{"flag_id", "name", "description"},
			[]relstore.Value{relstore.Int(int64(i + 1)), relstore.Str(name), relstore.Str("object quality flag " + name)}); err != nil {
			return err
		}
	}
	return nil
}

func nightName(r int) string {
	return "2005-" + twoDigits(1+(r-1)/28) + "-" + twoDigits(1+(r-1)%28)
}

func twoDigits(n int) string {
	if n < 10 {
		return "0" + string(rune('0'+n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}
