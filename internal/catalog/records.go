package catalog

import (
	"fmt"
	"strings"
)

// Tag identifies the destination of one catalog-file row.  Every row in a
// Palomar-Quest catalog file carries "a tag or a keyword that can be used to
// determine the destination table in the database" (§4.1); these are the tags
// our synthetic catalog format uses.
type Tag string

// Catalog row tags.
const (
	TagOBS Tag = "OBS" // observation header
	TagPRM Tag = "PRM" // observation parameter
	TagREG Tag = "REG" // sky region scanned
	TagCCD Tag = "CCD" // CCD column metadata
	TagFRM Tag = "FRM" // CCD frame
	TagAPR Tag = "APR" // frame aperture (4 per frame)
	TagZPT Tag = "ZPT" // frame zero point
	TagAST Tag = "AST" // frame astrometric solution
	TagPHO Tag = "PHO" // frame photometric calibration
	TagOBJ Tag = "OBJ" // detected object
	TagFNG Tag = "FNG" // object finger (4 per object)
	TagOAP Tag = "OAP" // object aperture magnitude
	TagSHP Tag = "SHP" // object shape parameters
	TagFLG Tag = "FLG" // object quality flag
)

// TagLayout describes the raw fields carried by rows with a given tag and the
// database table they populate.
type TagLayout struct {
	Tag    Tag
	Table  string
	Fields []string
}

// Layouts lists every tag in the order the extraction pipeline emits them.
var Layouts = []TagLayout{
	{TagOBS, TObservations, []string{"obs_id", "run_id", "telescope_id", "mjd_start", "ra_center", "dec_center", "airmass", "filter_set", "exposure_s"}},
	{TagPRM, TObservationParams, []string{"param_id", "obs_id", "name", "value"}},
	{TagREG, TSkyRegions, []string{"region_id", "obs_id", "ra_min", "ra_max", "dec_min", "dec_max"}},
	{TagCCD, TCCDColumns, []string{"ccd_col_id", "obs_id", "ccd_id", "ccd_number", "filter", "ra_center", "dec_center", "gain", "read_noise"}},
	{TagFRM, TCCDFrames, []string{"frame_id", "ccd_col_id", "frame_number", "mjd_start", "exposure_s", "seeing_arcsec", "sky_level", "zero_point"}},
	{TagAPR, TFrameApertures, []string{"aperture_id", "frame_id", "aperture_number", "radius_arcsec", "flux_correction"}},
	{TagZPT, TFrameZeroPoints, []string{"zp_id", "frame_id", "mag_zero", "zp_error", "color_term"}},
	{TagAST, TFrameAstrometry, []string{"ast_id", "frame_id", "crval1", "crval2", "cd1_1", "cd1_2", "cd2_1", "cd2_2", "rms_arcsec"}},
	{TagPHO, TFramePhotometry, []string{"pho_id", "frame_id", "mag_limit", "extinction", "sky_brightness"}},
	{TagOBJ, TObjects, []string{"object_id", "frame_id", "ra", "dec", "mag", "mag_err", "fwhm", "ellipticity", "flags"}},
	{TagFNG, TObjectFingers, []string{"finger_id", "object_id", "finger_number", "flux", "flux_err", "radius_arcsec"}},
	{TagOAP, TObjectApertures, []string{"oap_id", "object_id", "aperture_number", "mag", "mag_err"}},
	{TagSHP, TObjectShapes, []string{"shape_id", "object_id", "semi_major", "semi_minor", "theta_deg", "class_star"}},
	{TagFLG, TObjectFlags, []string{"oflag_id", "object_id", "flag_id", "value"}},
}

// layoutByTag is the lookup map built from Layouts.
var layoutByTag = func() map[Tag]TagLayout {
	m := make(map[Tag]TagLayout, len(Layouts))
	for _, l := range Layouts {
		m[l.Tag] = l
	}
	return m
}()

// LayoutFor returns the layout for tag; ok is false for unknown tags.
func LayoutFor(tag Tag) (TagLayout, bool) {
	l, ok := layoutByTag[tag]
	return l, ok
}

// TableForTag returns the destination table of rows with the given tag.
func TableForTag(tag Tag) (string, bool) {
	l, ok := layoutByTag[tag]
	return l.Table, ok
}

// FieldSep separates fields within a catalog line.
const FieldSep = "|"

// Record is one parsed catalog-file row.
type Record struct {
	Tag    Tag
	Fields []string
	// Line is the 1-based line number in the source file (0 when the record
	// was generated in memory and never serialized).
	Line int
}

// Format renders the record as a catalog file line (without newline).
func (r Record) Format() string {
	return string(r.Tag) + FieldSep + strings.Join(r.Fields, FieldSep)
}

// Bytes returns the serialized length of the record including the newline,
// which is what the generator uses to account catalog-file volume.
func (r Record) Bytes() int { return len(r.Format()) + 1 }

// ParseLine parses one catalog file line into a Record.  It validates that
// the tag is known and the field count matches the tag's layout; it does not
// validate field contents (that is the transformer's and the database's job).
func ParseLine(line string, lineNo int) (Record, error) {
	line = strings.TrimRight(line, "\r\n")
	if line == "" || strings.HasPrefix(line, "#") {
		return Record{}, ErrSkipLine
	}
	parts := strings.Split(line, FieldSep)
	tag := Tag(strings.TrimSpace(parts[0]))
	layout, ok := layoutByTag[tag]
	if !ok {
		return Record{}, &ParseError{Line: lineNo, Reason: fmt.Sprintf("unknown tag %q", parts[0])}
	}
	fields := parts[1:]
	if len(fields) != len(layout.Fields) {
		return Record{}, &ParseError{Line: lineNo, Tag: tag,
			Reason: fmt.Sprintf("expected %d fields, got %d", len(layout.Fields), len(fields))}
	}
	return Record{Tag: tag, Fields: fields, Line: lineNo}, nil
}

// ErrSkipLine is returned by ParseLine for blank and comment lines.
var ErrSkipLine = fmt.Errorf("catalog: blank or comment line")

// ParseError reports a malformed catalog line.
type ParseError struct {
	Line   int
	Tag    Tag
	Reason string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.Tag != "" {
		return fmt.Sprintf("catalog: line %d (%s): %s", e.Line, e.Tag, e.Reason)
	}
	return fmt.Sprintf("catalog: line %d: %s", e.Line, e.Reason)
}
