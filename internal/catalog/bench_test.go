package catalog

import (
	"testing"
)

// BenchmarkCatalogParse measures the parse+transform cost per catalog line —
// the client-side work of §3 (type conversion, precision adjustment, derived
// htmid/unit-vector computation) that precedes buffering.
func BenchmarkCatalogParse(b *testing.B) {
	schema := NewSchema()
	tr := NewTransformer(schema)
	file := Generate(GenSpec{SizeMB: 10, Seed: 1})
	lines := make([]string, len(file.Records))
	for i, rec := range file.Records {
		lines[i] = rec.Format()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := ParseLine(lines[i%len(lines)], i+1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Transform(rec); err != nil {
			b.Fatal(err)
		}
	}
}
