package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: geometric buckets from histMinValue upward with
// four buckets per octave (~19% relative resolution), which spans a few
// hundred nanoseconds to well over an hour in a fixed, allocation-free table.
const (
	histBuckets        = 140
	histMinValue       = 250 * time.Nanosecond
	histBucketsPerOct  = 4
	histLog2MinValue   = 7.965784284662087 // log2(250)
	histInvLog2Spacing = float64(histBucketsPerOct)
)

// Histogram is a fixed-bucket, log-scaled latency histogram safe for
// concurrent observation: every bucket is an atomic counter, so recording
// from many serving workers never takes a lock.  Quantiles are answered from
// the bucket counts with the geometric midpoint of the winning bucket, giving
// a deterministic answer for a deterministic stream of observations (the DES
// engine relies on that for reproducible p50/p95/p99 reports).
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	if d < histMinValue {
		return 0
	}
	idx := int((math.Log2(float64(d)) - histLog2MinValue) * histInvLog2Spacing)
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketValue returns the representative (geometric midpoint) duration of a
// bucket.
func bucketValue(idx int) time.Duration {
	exp := histLog2MinValue + (float64(idx)+0.5)/histInvLog2Spacing
	return time.Duration(math.Exp2(exp))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the approximate q-quantile (0 < q <= 1) of the observed
// durations, clamped to the exact observed maximum so tail quantiles never
// exceed reality.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	if target >= n {
		// The quantile selects the largest observation, which is tracked
		// exactly.
		return h.Max()
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= target {
			v := bucketValue(i)
			if max := h.Max(); v > max {
				return max
			}
			return v
		}
	}
	return h.Max()
}

// Buckets snapshots the raw bucket counts alongside each bucket's inclusive
// upper bound.  Bucket i counts observations d with bounds[i-1] < d <=
// bounds[i] (bucket 0 additionally absorbs everything below the histogram
// floor); the last bucket is open-ended and its bound is the largest
// representable duration, so exporters emitting cumulative `le` buckets
// append their own +Inf.  The two slices are freshly allocated: snapshotting
// never blocks or is blocked by concurrent Observe calls.
func (h *Histogram) Buckets() (counts []int64, bounds []time.Duration) {
	counts = make([]int64, histBuckets)
	bounds = make([]time.Duration, histBuckets)
	for i := 0; i < histBuckets; i++ {
		counts[i] = h.counts[i].Load()
		bounds[i] = bucketBound(i)
	}
	return counts, bounds
}

// bucketBound returns the inclusive upper bound of a bucket: the largest
// duration bucketIndex maps to it.  The geometric edge is only a float
// estimate of that integer nanosecond, so it is corrected against
// bucketIndex itself — the bound is exact by construction, which is what
// lets the cumulative `le` exposition promise "observations <= bound".
// The final bucket is unbounded.
func bucketBound(idx int) time.Duration {
	if idx >= histBuckets-1 {
		return time.Duration(math.MaxInt64)
	}
	b := time.Duration(math.Exp2(histLog2MinValue + float64(idx+1)/histInvLog2Spacing))
	for b > 0 && bucketIndex(b) > idx {
		b--
	}
	for bucketIndex(b+1) <= idx {
		b++
	}
	return b
}

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Merge folds o's observations into h bucket by bucket, so per-client or
// per-shard histograms can be combined into one exposition series.  Merging
// is linear and loss-free (both histograms share the fixed bucket table);
// quantiles of the merged histogram are exactly what a single histogram
// observing both streams would report, except Max, which is the max of the
// two tracked maxima (still exact).  o is read with the same atomic loads a
// snapshot uses, so merging a live histogram is safe.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// HistogramSummary is a point-in-time digest of a histogram.
type HistogramSummary struct {
	Count         int64
	Mean          time.Duration
	P50, P95, P99 time.Duration
	Max           time.Duration
}

// Summary digests the histogram into the percentiles serving reports use.
func (h *Histogram) Summary() HistogramSummary {
	return HistogramSummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// String renders the summary compactly for reports.
func (s HistogramSummary) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}
