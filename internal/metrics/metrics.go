// Package metrics provides small result-reporting helpers shared by the
// experiment harness, the benchmarks and the command-line tools: numeric
// series, result tables with text and CSV rendering, and summary statistics.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a rectangular result table, one row per parameter setting.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are free-form lines printed under the table (calibration
	// caveats, scaling factors, etc.).
	Notes []string
}

// AddRow appends a row; values are formatted with %v, floats with 3 decimals.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		case float32:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: " + n + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// CSV writes the table in comma-separated form (title and notes omitted).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(csvLine(t.Columns))
	for _, row := range t.Rows {
		b.WriteString(csvLine(row))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvLine(cells []string) string {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		out[i] = c
	}
	return strings.Join(out, ",") + "\n"
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Column extracts a numeric column by name; non-numeric cells are skipped.
func (t *Table) Column(name string) []float64 {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	var out []float64
	for _, row := range t.Rows {
		if idx < len(row) {
			var v float64
			if _, err := fmt.Sscanf(row[idx], "%f", &v); err == nil {
				out = append(out, v)
			}
		}
	}
	return out
}

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	Median float64
	StdDev float64
}

// Summarize computes descriptive statistics for xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Ratio returns a/b, or 0 when b is 0 — a convenience for speedup columns.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// PercentChange returns (x-base)/base in percent, or 0 when base is 0.
func PercentChange(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (x - base) / base * 100
}

// ArgMin returns the index of the smallest value (or -1 for empty input).
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest value (or -1 for empty input).
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
