package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zeroed: %+v", h.Summary())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 observations: 1ms, 2ms, ..., 100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %s", h.Max())
	}
	// Bucket resolution is ~19%, so quantiles are approximate: check they are
	// within a bucket's relative error of the exact answer.
	checks := []struct {
		q     float64
		exact time.Duration
	}{{0.50, 50 * time.Millisecond}, {0.95, 95 * time.Millisecond}, {0.99, 99 * time.Millisecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo := time.Duration(float64(c.exact) * 0.78)
		hi := time.Duration(float64(c.exact) * 1.22)
		if got < lo || got > hi {
			t.Fatalf("q%.2f = %s, want within [%s, %s]", c.q, got, lo, hi)
		}
	}
	if h.Quantile(1.0) > h.Max() {
		t.Fatalf("q1.0 = %s exceeds observed max %s", h.Quantile(1.0), h.Max())
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(1+i*i) * time.Microsecond)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q%v = %s < %s", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(time.Nanosecond)
	h.Observe(24 * time.Hour) // far beyond the top bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 24*time.Hour {
		t.Fatalf("max = %s", h.Max())
	}
	if h.Quantile(1.0) != 24*time.Hour {
		t.Fatalf("top quantile clamps to max, got %s", h.Quantile(1.0))
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const goroutines = 8
	const each = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(1+g*each+i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*each {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*each)
	}
	sum := h.Summary()
	if sum.P50 <= 0 || sum.P95 < sum.P50 || sum.P99 < sum.P95 || sum.Max < sum.P99 {
		t.Fatalf("summary not ordered: %+v", sum)
	}
}
