package metrics

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// buildFixture assembles a small deterministic exposition payload: two
// counters, a gauge with labels needing escaping, and one histogram.
func buildFixture() string {
	h := NewHistogram()
	for _, d := range []time.Duration{
		100 * time.Nanosecond, // below floor -> bucket 0
		time.Microsecond,
		time.Microsecond,
		50 * time.Microsecond,
		time.Millisecond,
		20 * time.Millisecond,
	} {
		h.Observe(d)
	}
	var b bytes.Buffer
	p := NewPromWriter(&b)
	p.Metric("sky_rows_inserted_total", "Rows inserted.", "counter")
	p.SampleInt("sky_rows_inserted_total", nil, 1234567)
	p.Metric("sky_violations_total", "Constraint violations by kind.", "counter")
	p.SampleInt("sky_violations_total", []Label{{"kind", `primary"key`}}, 3)
	p.SampleInt("sky_violations_total", []Label{{"kind", "foreign\nkey"}}, 4)
	p.Metric("sky_cache_resident_pages", "Resident buffer-cache pages.", "gauge")
	p.Sample("sky_cache_resident_pages", nil, 2048)
	p.Metric("sky_latency_seconds", "Query latency.", "histogram")
	p.Histogram("sky_latency_seconds", []Label{{"class", "cone"}}, h)
	if p.Err() != nil {
		panic(p.Err())
	}
	return b.String()
}

func TestPromGolden(t *testing.T) {
	got := buildFixture()
	path := filepath.Join("testdata", "prom_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file %s\n--- got ---\n%s", path, got)
	}
}

func TestPromValidAcceptsFixture(t *testing.T) {
	families, err := PromValid(buildFixture())
	if err != nil {
		t.Fatalf("fixture rejected: %v", err)
	}
	for _, want := range []string{"sky_rows_inserted_total", "sky_violations_total", "sky_latency_seconds"} {
		if !families[want] {
			t.Errorf("family %q not reported (got %v)", want, families)
		}
	}
}

func TestPromValidRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE header": "sky_x_total 1\n",
		"non-monotone buckets": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n",
		"missing +Inf": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_sum 1\nh_count 5\n",
		"garbage value": "# HELP c c\n# TYPE c counter\nc zork\n",
	}
	for name, payload := range cases {
		if _, err := PromValid(payload); err == nil {
			t.Errorf("%s: payload accepted, want error", name)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	durations := []time.Duration{
		0, 300 * time.Nanosecond, time.Microsecond, time.Microsecond,
		37 * time.Microsecond, 2 * time.Millisecond, 3 * time.Second,
	}
	for _, d := range durations {
		h.Observe(d)
	}
	counts, bounds := h.Buckets()
	if len(counts) != len(bounds) {
		t.Fatalf("len(counts)=%d len(bounds)=%d", len(counts), len(bounds))
	}
	var total int64
	for i, c := range counts {
		total += c
		if i > 0 && bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v <= %v", i, bounds[i], bounds[i-1])
		}
	}
	if total != int64(len(durations)) {
		t.Fatalf("bucket counts sum to %d, want %d", total, len(durations))
	}
	if got := h.Sum(); got != 3*time.Second+2*time.Millisecond+39*time.Microsecond+300*time.Nanosecond {
		t.Fatalf("Sum() = %v", got)
	}
	// Every observation must land in the bucket whose bound covers it.
	for _, d := range durations {
		idx := 0
		for idx < len(bounds)-1 && d > bounds[idx] {
			idx++
		}
		if counts[idx] == 0 {
			t.Errorf("observation %v expected in bucket %d (bound %v), which is empty", d, idx, bounds[idx])
		}
	}
	if bounds[len(bounds)-1] != time.Duration(math.MaxInt64) {
		t.Errorf("last bound = %v, want open-ended", bounds[len(bounds)-1])
	}
}

func TestHistogramMerge(t *testing.T) {
	all := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram()}
	for i := 0; i < 3000; i++ {
		d := time.Duration(i*i%7919) * time.Microsecond
		all.Observe(d)
		parts[i%3].Observe(d)
	}
	merged := NewHistogram()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != all.Count() || merged.Sum() != all.Sum() || merged.Max() != all.Max() {
		t.Fatalf("merged count/sum/max = %d/%v/%v, want %d/%v/%v",
			merged.Count(), merged.Sum(), merged.Max(), all.Count(), all.Sum(), all.Max())
	}
	if ms, as := merged.Summary(), all.Summary(); ms != as {
		t.Fatalf("merged summary %+v != combined summary %+v", ms, as)
	}
	mc, _ := merged.Buckets()
	ac, _ := all.Buckets()
	for i := range mc {
		if mc[i] != ac[i] {
			t.Fatalf("bucket %d: merged %d != combined %d", i, mc[i], ac[i])
		}
	}
	merged.Merge(nil) // must not panic
}

// TestPromScrapeUnderLoad renders the histogram while writers hammer it; run
// under -race this is the exporter/Observe ownership check: scrapes take no
// locks and writers never stall, and every scrape must still satisfy the
// structural validity rules.
func TestPromScrapeUnderLoad(t *testing.T) {
	h := NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := time.Duration(g+1) * 37 * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(d)
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		var b bytes.Buffer
		p := NewPromWriter(&b)
		p.Metric("sky_latency_seconds", "latency", "histogram")
		p.Histogram("sky_latency_seconds", nil, h)
		if p.Err() != nil {
			t.Fatal(p.Err())
		}
		if _, err := PromValid(b.String()); err != nil {
			t.Fatalf("scrape %d invalid under load: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
