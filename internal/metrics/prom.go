package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// PromWriter emits metrics in the Prometheus text exposition format
// (version 0.0.4) without depending on a client library: the /metrics
// endpoint of the HTTP front door hand-rolls its catalog through this
// writer.  Usage is two-phase per metric family: Metric writes the
// # HELP / # TYPE header, then one or more Sample/Histogram calls write the
// series.  Errors are sticky — the first write error suppresses all later
// output and is reported by Err, so call sites don't need per-line checks.
//
// The writer is not safe for concurrent use; the exporter builds one per
// scrape.  Values are read from live atomics by the caller, so a scrape
// racing ongoing traffic sees per-series-consistent (not cross-series
// consistent) values, the same contract a real Prometheus client offers.
type PromWriter struct {
	w   io.Writer
	err error
	buf []byte
}

// Label is one name="value" pair attached to a series.
type Label struct {
	Name, Value string
}

// NewPromWriter creates a writer emitting to w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, buf: make([]byte, 0, 256)}
}

// Err returns the first write error, or nil.
func (p *PromWriter) Err() error { return p.err }

// Metric writes the # HELP and # TYPE header of a metric family.  kind is
// one of "counter", "gauge" or "histogram".
func (p *PromWriter) Metric(name, help, kind string) {
	if p.err != nil {
		return
	}
	// HELP text escapes backslash and newline (label-value escaping rules
	// minus the quote, per the exposition format spec).
	help = strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(help)
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// Sample writes one series line: name{labels} value.
func (p *PromWriter) Sample(name string, labels []Label, value float64) {
	if p.err != nil {
		return
	}
	p.buf = p.buf[:0]
	p.buf = append(p.buf, name...)
	p.buf = appendLabels(p.buf, labels)
	p.buf = append(p.buf, ' ')
	p.buf = appendValue(p.buf, value)
	p.buf = append(p.buf, '\n')
	_, p.err = p.w.Write(p.buf)
}

// SampleInt writes one series line with an integer value (counters stay
// exact where float64 formatting would round above 2^53).
func (p *PromWriter) SampleInt(name string, labels []Label, value int64) {
	if p.err != nil {
		return
	}
	p.buf = p.buf[:0]
	p.buf = append(p.buf, name...)
	p.buf = appendLabels(p.buf, labels)
	p.buf = append(p.buf, ' ')
	p.buf = strconv.AppendInt(p.buf, value, 10)
	p.buf = append(p.buf, '\n')
	_, p.err = p.w.Write(p.buf)
}

// Histogram writes a latency histogram as cumulative le-bucket series in
// seconds: name_bucket{le="..."} lines (monotone non-decreasing, ending in
// le="+Inf"), then name_sum and name_count.  Empty trailing buckets are
// collapsed into the +Inf line, which keeps a 140-bucket histogram's
// exposition proportional to its occupied range; empty leading/interior
// buckets are kept so every scrape exposes the same bucket layout across the
// occupied range.  The caller must have declared the family with
// Metric(name, help, "histogram").
func (p *PromWriter) Histogram(name string, labels []Label, h *Histogram) {
	if p.err != nil || h == nil {
		return
	}
	counts, bounds := h.Buckets()
	last := -1
	for i, c := range counts {
		if c != 0 {
			last = i
		}
	}
	var cum int64
	bucket := name + "_bucket"
	lbls := make([]Label, len(labels)+1)
	copy(lbls, labels)
	for i := 0; i <= last; i++ {
		cum += counts[i]
		lbls[len(labels)] = Label{Name: "le", Value: formatSeconds(bounds[i])}
		p.SampleInt(bucket, lbls, cum)
	}
	// The +Inf bucket equals the total count by definition; emitting it from
	// Count() (not the bucket sum) keeps _count consistent even if a
	// concurrent Observe landed between the bucket loads above and here —
	// cumulative monotonicity is preserved because Observe bumps the bucket
	// before the count.
	total := h.Count()
	if total < cum {
		total = cum
	}
	lbls[len(labels)] = Label{Name: "le", Value: "+Inf"}
	p.SampleInt(bucket, lbls, total)
	p.Sample(name+"_sum", labels, h.Sum().Seconds())
	p.SampleInt(name+"_count", labels, total)
}

// appendLabels renders {k="v",...} with label-value escaping; no braces when
// empty.
func appendLabels(buf []byte, labels []Label) []byte {
	if len(labels) == 0 {
		return buf
	}
	buf = append(buf, '{')
	for i, l := range labels {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, l.Name...)
		buf = append(buf, '=', '"')
		for j := 0; j < len(l.Value); j++ {
			switch c := l.Value[j]; c {
			case '\\':
				buf = append(buf, '\\', '\\')
			case '"':
				buf = append(buf, '\\', '"')
			case '\n':
				buf = append(buf, '\\', 'n')
			default:
				buf = append(buf, c)
			}
		}
		buf = append(buf, '"')
	}
	return append(buf, '}')
}

func appendValue(buf []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		return append(buf, "-Inf"...)
	case math.IsNaN(v):
		return append(buf, "NaN"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// formatSeconds renders a duration bound as a seconds float le-value.  The
// open last bucket (bound == MaxInt64) never reaches here as a finite bound
// in practice, but render it as its literal seconds value anyway so the
// bucket layout stays well-formed if it ever holds counts.
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// PromValid is a structural validity check over an exposition payload; the
// scrape smokes and tests share it so "parseable Prometheus text" means the
// same thing everywhere.  It verifies for every metric family: a # TYPE
// line precedes its samples, sample lines parse, histogram buckets are
// cumulative-monotone ending in le="+Inf", and _count equals the +Inf
// bucket.  It returns the set of metric family names seen.
func PromValid(payload string) (map[string]bool, error) {
	families := make(map[string]bool)
	typed := make(map[string]string)
	type histState struct {
		last    int64
		inf     int64
		sawInf  bool
		count   int64
		sawCnt  bool
		baseSet bool
	}
	hists := make(map[string]*histState) // keyed by family+rendered labels (minus le)
	lineNo := 0
	for _, line := range strings.Split(payload, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				typed[fields[2]] = fields[3]
				families[fields[2]] = true
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := typed[family]; !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		families[family] = true
		if typed[family] != "histogram" {
			continue
		}
		le := ""
		var rest []string
		for _, l := range labels {
			if l.Name == "le" {
				le = l.Value
			} else {
				rest = append(rest, l.Name+"="+l.Value)
			}
		}
		key := family + "|" + strings.Join(rest, ",")
		st := hists[key]
		if st == nil {
			st = &histState{}
			hists[key] = st
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			n := int64(value)
			if le == "+Inf" {
				st.inf, st.sawInf = n, true
				break
			}
			if st.sawInf {
				return nil, fmt.Errorf("line %d: bucket after le=\"+Inf\" in %s", lineNo, key)
			}
			if st.baseSet && n < st.last {
				return nil, fmt.Errorf("line %d: non-monotone cumulative bucket in %s (%d < %d)", lineNo, key, n, st.last)
			}
			st.last, st.baseSet = n, true
		case strings.HasSuffix(name, "_count"):
			st.count, st.sawCnt = int64(value), true
		}
	}
	for key, st := range hists {
		if !st.sawInf {
			return nil, fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", key)
		}
		if st.baseSet && st.last > st.inf {
			return nil, fmt.Errorf("histogram %s: largest finite bucket %d exceeds +Inf %d", key, st.last, st.inf)
		}
		if !st.sawCnt {
			return nil, fmt.Errorf("histogram %s missing _count", key)
		}
		if st.count != st.inf {
			return nil, fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", key, st.count, st.inf)
		}
	}
	return families, nil
}

// parseSample parses one exposition sample line.
func parseSample(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		body := rest[1:end]
		rest = rest[end+1:]
		for _, part := range splitLabels(body) {
			eq := strings.Index(part, "=")
			if eq < 0 || len(part) < eq+2 || part[eq+1] != '"' || part[len(part)-1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed label %q in %q", part, line)
			}
			v := part[eq+2 : len(part)-1]
			v = strings.NewReplacer(`\n`, "\n", `\"`, `"`, `\\`, `\`).Replace(v)
			labels = append(labels, Label{Name: part[:eq], Value: v})
		}
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", nil, 0, fmt.Errorf("missing value in %q", line)
	}
	switch fields[0] {
	case "+Inf":
		value = math.Inf(1)
	case "-Inf":
		value = math.Inf(-1)
	case "NaN":
		value = math.NaN()
	default:
		value, err = strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return "", nil, 0, fmt.Errorf("bad value %q in %q", fields[0], line)
		}
	}
	return name, labels, value, nil
}

// splitLabels splits k1="v1",k2="v2" on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// SortedLabelNames returns map keys sorted, a tiny helper exporters use to
// emit label-sets deterministically.
func SortedLabelNames[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
