package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		Title:   "Sample",
		Columns: []string{"size_mb", "runtime_s", "label"},
		Notes:   []string{"a note"},
	}
	t.AddRow(200.0, 307.5, "bulk")
	t.AddRow(400, 612.123456, "non,bulk")
	return t
}

func TestTableRender(t *testing.T) {
	tbl := sampleTable()
	out := tbl.String()
	for _, want := range []string{"Sample", "size_mb", "307.500", "612.123", "note: a note", "bulk"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, separator, two rows, one note.
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := sampleTable()
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if lines[0] != "size_mb,runtime_s,label" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"non,bulk"`) {
		t.Fatalf("comma not quoted: %q", lines[2])
	}
}

func TestTableColumn(t *testing.T) {
	tbl := sampleTable()
	col := tbl.Column("runtime_s")
	if len(col) != 2 || math.Abs(col[0]-307.5) > 1e-9 {
		t.Fatalf("Column = %v", col)
	}
	if tbl.Column("missing") != nil {
		t.Fatal("missing column should return nil")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6, 8})
	if s.N != 4 || s.Mean != 5 || s.Min != 2 || s.Max != 8 || s.Median != 5 {
		t.Fatalf("summary: %+v", s)
	}
	if math.Abs(s.StdDev-2.581988897) > 1e-6 {
		t.Fatalf("stddev: %v", s.StdDev)
	}
	odd := Summarize([]float64{1, 9, 5})
	if odd.Median != 5 {
		t.Fatalf("odd median: %v", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary: %+v", empty)
	}
}

func TestRatioAndPercent(t *testing.T) {
	if Ratio(10, 2) != 5 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio broken")
	}
	if PercentChange(110, 100) != 10 || PercentChange(5, 0) != 0 {
		t.Fatal("PercentChange broken")
	}
}

func TestArgMinMax(t *testing.T) {
	xs := []float64{5, 2, 9, 2.5}
	if ArgMin(xs) != 1 || ArgMax(xs) != 2 {
		t.Fatalf("ArgMin/ArgMax: %d %d", ArgMin(xs), ArgMax(xs))
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("empty input should return -1")
	}
}
