// Package core implements the SkyLoader bulk-loading engine, the primary
// contribution of the paper: the bulk_loading algorithm (Figure 3) that
// buffers interleaved catalog rows into an array-set, flushes the arrays with
// bulk inserts in parent-before-child order, skips offending rows on batch
// errors by index tracing, and commits infrequently.
package core

import (
	"fmt"
	"time"

	"skyloader/internal/arrayset"
	"skyloader/internal/catalog"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
)

// Config holds the loader's user-tunable constants and policies.
type Config struct {
	// BatchSize is the number of rows sent per database call (the paper's
	// batch-size constant; 40 was found optimal).
	BatchSize int
	// ArraySize is the per-table buffer threshold that triggers a flush of
	// the whole array-set (the paper's array-size constant; 1000 optimal).
	ArraySize int
	// PerTableArraySize optionally overrides ArraySize per table (§4.3
	// future-work extension).
	PerTableArraySize map[string]int
	// MemoryHighWaterBytes, when > 0, also triggers a flush when the
	// aggregate buffered memory exceeds it (§4.3 future-work extension).
	MemoryHighWaterBytes int64
	// CommitEveryBatches commits after every N batches; 0 commits only at
	// the end of each file (the paper's "very infrequent" commits, §4.5.2).
	CommitEveryBatches int
	// RecordProvenance, when true, writes a load_runs row per file and a
	// load_errors row for every skipped row.
	RecordProvenance bool
	// LoaderNode identifies the cluster node running this loader in
	// provenance records and statistics.
	LoaderNode int
	// ChargeStaging, when true, charges the time to stage each catalog file
	// from mass storage before parsing it.
	ChargeStaging bool
	// SealAfterLoad, when true, closes the engine's load phase at the end of
	// LoadFiles: deferred-policy indexes are bulk-rebuilt (DB.Seal) through
	// this loader's connection and the build time lands in Stats.SealTime
	// and Elapsed.  Single-loader callers set it together with a
	// deferred-index tuning profile; multi-loader clusters seal once through
	// the coordinator (parallel.Config.SealAfterLoad) instead.
	SealAfterLoad bool
}

// DefaultConfig returns the production SkyLoader configuration (batch 40,
// array 1000, commit at end of file).
func DefaultConfig() Config {
	return Config{
		BatchSize:     40,
		ArraySize:     1000,
		ChargeStaging: true,
	}
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 40
	}
	if c.ArraySize <= 0 {
		c.ArraySize = 1000
	}
	return c
}

// SkippedRow describes one row rejected by the database and skipped by the
// error-recovery path.
type SkippedRow struct {
	Table      string
	SourceLine int
	File       string
	Reason     string
}

// Stats aggregates the work done by a loader.
type Stats struct {
	Files        int
	RowsRead     int
	ParseErrors  int
	RowsBuffered int
	RowsLoaded   int
	RowsSkipped  int
	Batches      int
	DBCalls      int
	FlushCycles  int
	Commits      int
	LockWaits    int
	LongStalls   int

	NominalBytes int64
	Elapsed      time.Duration

	// SealTime is the service time spent closing the load phase (bulk index
	// rebuild) when SealAfterLoad is set; IndexesSealed counts the indexes
	// rebuilt.  Both are zero under the immediate policy.
	SealTime      time.Duration
	IndexesSealed int

	RowsLoadedByTable map[string]int
	SkippedByTable    map[string]int
	Skipped           []SkippedRow
}

// MBPerSecond returns nominal megabytes loaded per virtual second.
func (s Stats) MBPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.NominalBytes) / 1e6 / s.Elapsed.Seconds()
}

// Merge accumulates other into s (used to combine per-node statistics).
func (s *Stats) Merge(other Stats) {
	s.Files += other.Files
	s.RowsRead += other.RowsRead
	s.ParseErrors += other.ParseErrors
	s.RowsBuffered += other.RowsBuffered
	s.RowsLoaded += other.RowsLoaded
	s.RowsSkipped += other.RowsSkipped
	s.Batches += other.Batches
	s.DBCalls += other.DBCalls
	s.FlushCycles += other.FlushCycles
	s.Commits += other.Commits
	s.LockWaits += other.LockWaits
	s.LongStalls += other.LongStalls
	s.NominalBytes += other.NominalBytes
	s.SealTime += other.SealTime
	s.IndexesSealed += other.IndexesSealed
	if other.Elapsed > s.Elapsed {
		s.Elapsed = other.Elapsed
	}
	if s.RowsLoadedByTable == nil {
		s.RowsLoadedByTable = make(map[string]int)
	}
	for t, n := range other.RowsLoadedByTable {
		s.RowsLoadedByTable[t] += n
	}
	if s.SkippedByTable == nil {
		s.SkippedByTable = make(map[string]int)
	}
	for t, n := range other.SkippedByTable {
		s.SkippedByTable[t] += n
	}
	s.Skipped = append(s.Skipped, other.Skipped...)
}

// Loader is a single SkyLoader process: it owns one database connection and
// loads catalog files through it.
type Loader struct {
	conn   *sqlbatch.Conn
	schema *relstore.Schema
	cfg    Config
	cost   sqlbatch.CostModel
	xform  *catalog.Transformer

	set   *arrayset.ArraySet
	stats Stats

	batchesSinceCommit int
	nextLoadRunID      int64
	nextLoadErrID      int64
	currentFile        string
}

// NewLoader creates a loader over an open connection.
func NewLoader(conn *sqlbatch.Conn, cfg Config) (*Loader, error) {
	cfg = cfg.withDefaults()
	schema := conn.Server().DB().Schema()
	set, err := arrayset.New(schema, arrayset.Config{
		ArraySize:            cfg.ArraySize,
		PerTableSize:         cfg.PerTableArraySize,
		MemoryHighWaterBytes: cfg.MemoryHighWaterBytes,
		RowOverheadBytes:     conn.Server().Cost().BufferedRowOverheadBytes,
	})
	if err != nil {
		return nil, err
	}
	l := &Loader{
		conn:   conn,
		schema: schema,
		cfg:    cfg,
		cost:   conn.Server().Cost(),
		xform:  catalog.NewTransformer(schema),
		set:    set,
	}
	l.stats.RowsLoadedByTable = make(map[string]int)
	l.stats.SkippedByTable = make(map[string]int)
	// Provenance ids are derived from the loader node to stay unique across
	// parallel loaders.
	l.nextLoadRunID = int64(cfg.LoaderNode+1) * 1_000_000
	l.nextLoadErrID = int64(cfg.LoaderNode+1) * 10_000_000
	return l, nil
}

// MustNewLoader is NewLoader that panics on error.
func MustNewLoader(conn *sqlbatch.Conn, cfg Config) *Loader {
	l, err := NewLoader(conn, cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// Stats returns the loader's accumulated statistics.
func (l *Loader) Stats() Stats { return l.stats }

// Config returns the loader configuration.
func (l *Loader) Config() Config { return l.cfg }

// LoadFiles loads the given catalog files sequentially and returns the
// accumulated statistics.  Elapsed time covers the whole call, including the
// end-of-load Seal when SealAfterLoad is set.
func (l *Loader) LoadFiles(files []*catalog.File) (Stats, error) {
	start := l.conn.Worker().Now()
	for _, f := range files {
		if err := l.LoadFile(f); err != nil {
			return l.stats, err
		}
	}
	if l.cfg.SealAfterLoad {
		if err := l.Seal(); err != nil {
			return l.stats, err
		}
	}
	l.stats.Elapsed = l.conn.Worker().Now() - start
	return l.stats, nil
}

// Seal closes the engine's load phase through this loader's connection,
// bulk-rebuilding every deferred index, and accounts the build time.  It is
// called automatically by LoadFiles under Config.SealAfterLoad and may be
// called directly by coordinators that drive LoadFile themselves.
func (l *Loader) Seal() error {
	start := l.conn.Worker().Now()
	rep, err := l.conn.Seal()
	if err != nil {
		return fmt.Errorf("core: seal: %w", err)
	}
	l.stats.SealTime += l.conn.Worker().Now() - start
	l.stats.IndexesSealed += len(rep.Indexes)
	return nil
}

// LoadFile loads one catalog file: it implements the bulk_loading procedure
// of Figure 3 (parse, validate, transform, buffer into the array-set, flush
// in parent-child order when any array fills, skip error rows, commit
// infrequently).
func (l *Loader) LoadFile(f *catalog.File) error {
	fileStart := l.conn.Worker().Now()
	l.currentFile = f.Name
	l.stats.Files++
	l.stats.NominalBytes += f.NominalBytes

	if l.cfg.ChargeStaging {
		l.conn.ChargeClientCPU(l.cost.StagingTime(f.NominalBytes))
	}

	if !l.conn.InTransaction() {
		if err := l.conn.Begin(); err != nil {
			return fmt.Errorf("core: begin transaction: %w", err)
		}
	}
	if l.cfg.RecordProvenance {
		if err := l.insertLoadRun(f); err != nil {
			return err
		}
	}

	for _, rec := range f.Records {
		if err := l.processRecord(rec); err != nil {
			return err
		}
	}
	// Final partial flush for the file (line 13-14 of Figure 3 reaching the
	// end of input with partially filled arrays).
	if err := l.flushArraySet(); err != nil {
		return err
	}
	if err := l.commit(); err != nil {
		return err
	}
	if l.stats.Elapsed < l.conn.Worker().Now()-fileStart {
		l.stats.Elapsed = l.conn.Worker().Now() - fileStart
	}
	return nil
}

// processRecord is line 4-12 of Figure 3 for one input row.
func (l *Loader) processRecord(rec catalog.Record) error {
	l.stats.RowsRead++
	// Client-side parse/validate/transform/compute cost, accumulated and
	// charged as a single hold per row to keep the simulation fast.
	clientWork := l.cost.ParseRowCost + l.cost.TransformRowCost

	row, err := l.xform.Transform(rec)
	if err != nil {
		// Validation failure on the client: the row never reaches the
		// database (the paper's validation step filters errors and
		// outliers, §3).
		l.stats.ParseErrors++
		l.conn.ChargeClientCPU(clientWork)
		return nil
	}

	full, created, err := l.set.Add(row.Table, row.Columns, row.Values, rec.Line)
	if err != nil {
		return err
	}
	l.stats.RowsBuffered++
	clientWork += l.cost.BufferRowCost
	if created {
		clientWork += l.cost.ArrayInitCost
	}
	// Client paging penalty once the array-set exceeds the node's memory
	// budget (Figure 6's right-hand side).
	if budget := l.cost.ClientMemoryBytes; budget > 0 {
		if mem := l.set.MemoryBytes(); mem > budget {
			over := float64(mem-budget) / float64(budget)
			clientWork += time.Duration(over * float64(l.cost.PagingPenaltyPerRow))
		}
	}
	l.conn.ChargeClientCPU(clientWork)

	if full {
		return l.flushArraySet()
	}
	return nil
}

// flushArraySet is lines 5-12 of Figure 3: bulk-load every array, parents
// before children, then release the arrays.
func (l *Loader) flushArraySet() error {
	if l.set.Len() == 0 {
		return nil
	}
	arrays := l.set.Drain()
	l.stats.FlushCycles++
	for _, arr := range arrays {
		if err := l.loadArray(arr); err != nil {
			return err
		}
	}
	return nil
}

// loadArray is lines 6-11 of Figure 3: repeatedly call batch_row with the
// remaining index range until every row of the array has been processed.
func (l *Loader) loadArray(arr *arrayset.Array) error {
	firstIdx := 0
	lastIdx := arr.Len() - 1
	for firstIdx <= lastIdx {
		next, err := l.batchRow(arr, firstIdx, lastIdx)
		if err != nil {
			return err
		}
		firstIdx = next
	}
	return nil
}

// batchRow is the batch_row function of Figure 3 (lines 15-35): pack rows
// into batches of batch-size, insert each batch in one database call, and on
// an error skip the offending row and return the index following it so the
// caller can resume.
//
// Batches are handed to the server as sub-slices of the array buffer rather
// than copied row-by-row through AddBatch: the array is stable until the
// flush cycle ends (random access into it is exactly what the array-set
// exists for), so the only per-row work left on this path is the engine's
// own validation and storage.
func (l *Loader) batchRow(arr *arrayset.Array, firstIdx, lastIdx int) (int, error) {
	stmt := l.conn.Prepare(arr.Table, arr.Columns)
	idx := firstIdx
	for idx <= lastIdx {
		end := idx + l.cfg.BatchSize
		if end > lastIdx+1 {
			end = lastIdx + 1
		}
		res, err := stmt.ExecuteBatchRows(arr.Rows[idx:end])
		if err != nil {
			return lastIdx + 1, fmt.Errorf("core: execute batch on %s: %w", arr.Table, err)
		}
		l.stats.Batches++
		l.stats.DBCalls++
		l.stats.RowsLoaded += res.RowsInserted
		l.stats.RowsLoadedByTable[arr.Table] += res.RowsInserted
		l.stats.LockWaits += res.LockWaits
		l.stats.LongStalls += res.LongStalls

		if err := l.maybeCommit(); err != nil {
			return lastIdx + 1, err
		}

		if res.Err == nil {
			idx = end
			continue
		}
		// A row in the batch violated a constraint: rows before it were
		// applied, the offender is skipped, and the caller resumes from the
		// row after it (index tracing through the source array).
		errIdx := idx + res.FailedIndex
		l.recordSkip(arr, errIdx, res.Err)
		return errIdx + 1, nil
	}
	return lastIdx + 1, nil
}

// recordSkip accounts one database-rejected row.
func (l *Loader) recordSkip(arr *arrayset.Array, idx int, cause error) {
	l.stats.RowsSkipped++
	l.stats.SkippedByTable[arr.Table]++
	line := 0
	if idx >= 0 && idx < len(arr.SourceLines) {
		line = arr.SourceLines[idx]
	}
	l.stats.Skipped = append(l.stats.Skipped, SkippedRow{
		Table:      arr.Table,
		SourceLine: line,
		File:       l.currentFile,
		Reason:     cause.Error(),
	})
	if l.cfg.RecordProvenance {
		l.insertLoadError(arr.Table, line, cause)
	}
}

// maybeCommit enforces the CommitEveryBatches policy.
func (l *Loader) maybeCommit() error {
	if l.cfg.CommitEveryBatches <= 0 {
		return nil
	}
	l.batchesSinceCommit++
	if l.batchesSinceCommit < l.cfg.CommitEveryBatches {
		return nil
	}
	if err := l.commit(); err != nil {
		return err
	}
	return l.conn.Begin()
}

// commit commits the current transaction if one is active.
func (l *Loader) commit() error {
	if !l.conn.InTransaction() {
		return nil
	}
	if err := l.conn.Commit(); err != nil {
		return fmt.Errorf("core: commit: %w", err)
	}
	l.stats.Commits++
	l.batchesSinceCommit = 0
	return nil
}

// insertLoadRun records provenance for the file being loaded.
func (l *Loader) insertLoadRun(f *catalog.File) error {
	l.nextLoadRunID++
	stmt := l.conn.Prepare(catalog.TLoadRuns,
		[]string{"load_run_id", "source_file", "loader_node", "rows_loaded", "rows_skipped"})
	_, err := stmt.ExecuteSingle([]relstore.Value{
		relstore.Int(l.nextLoadRunID), relstore.Str(f.Name), relstore.Int(int64(l.cfg.LoaderNode)),
		relstore.Null, relstore.Null})
	if err != nil {
		return err
	}
	return nil
}

// insertLoadError records provenance for a skipped row; provenance failures
// are not fatal to the load.
func (l *Loader) insertLoadError(table string, line int, cause error) {
	l.nextLoadErrID++
	reason := cause.Error()
	if len(reason) > 200 {
		reason = reason[:200]
	}
	stmt := l.conn.Prepare(catalog.TLoadErrors,
		[]string{"load_error_id", "load_run_id", "line_number", "target_table", "reason"})
	_, _ = stmt.ExecuteSingle([]relstore.Value{
		relstore.Int(l.nextLoadErrID), relstore.Int(l.nextLoadRunID), relstore.Int(int64(line)),
		relstore.Str(table), relstore.Str(reason)})
}
