package core

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"skyloader/internal/catalog"
	"skyloader/internal/des"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
)

// testEnv builds a kernel, a seeded repository database and a server.
func testEnv(t *testing.T) (*des.Kernel, *sqlbatch.Server) {
	t.Helper()
	k := des.NewKernel(7)
	db := relstore.MustOpen(catalog.NewSchema())
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	return k, sqlbatch.NewServer(k, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())
}

// loadWith runs a loader with the given config over the file and returns its
// statistics.
func loadWith(t *testing.T, srv *sqlbatch.Server, file *catalog.File, cfg Config) Stats {
	t.Helper()
	var stats Stats
	srv.Kernel().Spawn("loader", func(p *des.Proc) {
		conn := srv.Connect(p)
		defer conn.Close()
		loader, err := NewLoader(conn, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		stats, err = loader.LoadFiles([]*catalog.File{file})
		if err != nil {
			t.Error(err)
		}
	})
	srv.Kernel().Run()
	return stats
}

func TestLoadCleanFile(t *testing.T) {
	k, srv := testEnv(t)
	_ = k
	file := catalog.Generate(catalog.GenSpec{SizeMB: 3, Seed: 5, RunID: 1, IDBase: 1000})
	stats := loadWith(t, srv, file, DefaultConfig())

	if stats.RowsRead != file.DataRows {
		t.Fatalf("RowsRead = %d, want %d", stats.RowsRead, file.DataRows)
	}
	if stats.ParseErrors != 0 || stats.RowsSkipped != 0 {
		t.Fatalf("clean file produced errors: %+v", stats)
	}
	if stats.RowsLoaded != file.DataRows {
		t.Fatalf("RowsLoaded = %d, want %d", stats.RowsLoaded, file.DataRows)
	}
	if stats.Elapsed <= 0 || stats.MBPerSecond() <= 0 {
		t.Fatalf("timing missing: %+v", stats)
	}
	if stats.Commits != 1 {
		t.Fatalf("Commits = %d, want 1 (end of file)", stats.Commits)
	}

	db := srv.DB()
	for table, want := range file.RowsByTable {
		got, _ := db.Count(table)
		if got != int64(want) {
			t.Errorf("table %s: %d rows, want %d", table, got, want)
		}
	}
	if orphans, _ := db.VerifyIntegrity(); orphans != 0 {
		t.Fatalf("orphans after load: %d", orphans)
	}
	if err := db.VerifyPrimaryKeys(); err != nil {
		t.Fatal(err)
	}
	// Every loaded object has an htmid and unit-sphere coordinates.
	bad := 0
	_ = db.Scan(catalog.TObjects, func(r relstore.Row) bool {
		ts := db.Schema().Table(catalog.TObjects)
		if r[ts.ColumnIndex("htmid")].IsNull() {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d objects missing htmid", bad)
	}
}

func TestLoadFileWithErrorsSkipsOnlyBadRows(t *testing.T) {
	_, srv := testEnv(t)
	file := catalog.Generate(catalog.GenSpec{SizeMB: 4, Seed: 11, RunID: 1, IDBase: 1000, ErrorRate: 0.05})
	if file.TotalInjectedErrors() == 0 {
		t.Fatal("generator injected no errors")
	}
	stats := loadWith(t, srv, file, DefaultConfig())

	if stats.RowsLoaded+stats.RowsSkipped+stats.ParseErrors != stats.RowsRead {
		t.Fatalf("row accounting broken: %+v", stats)
	}
	if stats.RowsSkipped == 0 && stats.ParseErrors == 0 {
		t.Fatal("no rows skipped despite injected errors")
	}
	// Injected corruptions should roughly match skipped+parse errors; orphan
	// references can cascade (children of a skipped parent also fail), so
	// allow slack above, and duplicate-key corruption of a row whose original
	// also appears keeps one copy, so allow slack below.
	bad := stats.RowsSkipped + stats.ParseErrors
	if bad < file.TotalInjectedErrors()/3 {
		t.Fatalf("skipped %d rows for %d injected errors", bad, file.TotalInjectedErrors())
	}
	db := srv.DB()
	if orphans, _ := db.VerifyIntegrity(); orphans != 0 {
		t.Fatalf("orphans after load: %d", orphans)
	}
	if err := db.VerifyPrimaryKeys(); err != nil {
		t.Fatal(err)
	}
	total, _ := db.Count(catalog.TObjects)
	if total == 0 {
		t.Fatal("no objects loaded")
	}
	for _, skip := range stats.Skipped {
		if skip.Table == "" || skip.Reason == "" || skip.File == "" {
			t.Fatalf("incomplete skip record: %+v", skip)
		}
	}
}

// TestBatchRowErrorRecovery reproduces Example 1 of the paper: an error part
// way through an array must cause exactly that row to be skipped while every
// other row is loaded, with the batch repacked after the failure.
func TestBatchRowErrorRecovery(t *testing.T) {
	_, srv := testEnv(t)

	// Build a file by hand: 1 observation, 1 ccd, 1 frame and 100 objects
	// where object #45 duplicates the primary key of object #3.
	recs := []catalog.Record{
		{Tag: catalog.TagOBS, Fields: []string{"1", "1", "1", "53600.1", "120.0", "10.0", "1.2", "R", "140"}},
		{Tag: catalog.TagCCD, Fields: []string{"10", "1", "5", "5", "R", "120.1", "10.1", "2.1", "4.5"}},
		{Tag: catalog.TagFRM, Fields: []string{"100", "10", "0", "53600.2", "145.0", "1.4", "900", "23.1"}},
	}
	for i := 1; i <= 100; i++ {
		id := int64(1000 + i)
		if i == 45 {
			id = 1003 // duplicate of object #3
		}
		recs = append(recs, catalog.Record{Tag: catalog.TagOBJ, Fields: []string{
			i2s(id), "100", "120.2", "10.2", "18.5", "0.02", "1.4", "0.1", "0"}})
	}
	file := &catalog.File{
		Name:         "handmade.cat",
		Records:      recs,
		NominalBytes: 1 << 20,
		DataRows:     len(recs),
		RowsByTable:  map[string]int{},
	}

	cfg := DefaultConfig()
	cfg.BatchSize = 40
	cfg.ArraySize = 1000
	stats := loadWith(t, srv, file, cfg)

	if stats.RowsSkipped != 1 {
		t.Fatalf("RowsSkipped = %d, want exactly 1", stats.RowsSkipped)
	}
	if stats.RowsLoaded != len(recs)-1 {
		t.Fatalf("RowsLoaded = %d, want %d", stats.RowsLoaded, len(recs)-1)
	}
	n, _ := srv.DB().Count(catalog.TObjects)
	if n != 99 {
		t.Fatalf("objects = %d, want 99", n)
	}
	if len(stats.Skipped) != 1 || stats.Skipped[0].Table != catalog.TObjects {
		t.Fatalf("skip record: %+v", stats.Skipped)
	}
	if !strings.Contains(stats.Skipped[0].Reason, "PRIMARY KEY") {
		t.Fatalf("skip reason: %q", stats.Skipped[0].Reason)
	}
	// The error cost one extra database call (the broken batch is split into
	// the part before the error and the repacked remainder).
	perfect := 0
	for _, rows := range map[string]int{"obs": 1, "ccd": 1, "frm": 1, "obj": 100} {
		perfect += (rows + cfg.BatchSize - 1) / cfg.BatchSize
	}
	if stats.DBCalls != perfect+1 {
		t.Fatalf("DBCalls = %d, want %d (+1 for the repacked batch)", stats.DBCalls, perfect+1)
	}
}

func i2s(v int64) string { return strconv.FormatInt(v, 10) }

func TestCommitEveryBatches(t *testing.T) {
	_, srv := testEnv(t)
	file := catalog.Generate(catalog.GenSpec{SizeMB: 2, Seed: 9, RunID: 1, IDBase: 1000})
	cfg := DefaultConfig()
	cfg.CommitEveryBatches = 2
	stats := loadWith(t, srv, file, cfg)
	if stats.Commits < 3 {
		t.Fatalf("Commits = %d, want several", stats.Commits)
	}
	if stats.RowsLoaded != file.DataRows {
		t.Fatalf("RowsLoaded = %d, want %d", stats.RowsLoaded, file.DataRows)
	}
	if n, _ := srv.DB().Count(catalog.TObjects); n == 0 {
		t.Fatal("no objects committed")
	}
}

func TestMemoryHighWaterTriggersFlush(t *testing.T) {
	_, srv := testEnv(t)
	file := catalog.Generate(catalog.GenSpec{SizeMB: 2, Seed: 10, RunID: 1, IDBase: 1000})
	cfg := DefaultConfig()
	cfg.ArraySize = 1_000_000 // effectively disable the row threshold
	cfg.MemoryHighWaterBytes = 64 << 10
	stats := loadWith(t, srv, file, cfg)
	if stats.FlushCycles < 2 {
		t.Fatalf("FlushCycles = %d, want the high-water mark to trigger flushes", stats.FlushCycles)
	}
	if stats.RowsLoaded != file.DataRows {
		t.Fatalf("RowsLoaded = %d, want %d", stats.RowsLoaded, file.DataRows)
	}
}

func TestPerTableArraySize(t *testing.T) {
	_, srv := testEnv(t)
	file := catalog.Generate(catalog.GenSpec{SizeMB: 2, Seed: 12, RunID: 1, IDBase: 1000})
	cfg := DefaultConfig()
	cfg.PerTableArraySize = map[string]int{catalog.TObjectFingers: 100}
	stats := loadWith(t, srv, file, cfg)
	base := loadFresh(t, file, DefaultConfig())
	if stats.FlushCycles <= base.FlushCycles {
		t.Fatalf("per-table size should flush more often: %d vs %d", stats.FlushCycles, base.FlushCycles)
	}
}

// loadFresh loads the file into a brand-new environment.
func loadFresh(t *testing.T, file *catalog.File, cfg Config) Stats {
	t.Helper()
	_, srv := testEnv(t)
	return loadWith(t, srv, file, cfg)
}

func TestProvenanceRecording(t *testing.T) {
	_, srv := testEnv(t)
	file := catalog.Generate(catalog.GenSpec{SizeMB: 2, Seed: 13, RunID: 1, IDBase: 1000, ErrorRate: 0.05})
	cfg := DefaultConfig()
	cfg.RecordProvenance = true
	cfg.LoaderNode = 3
	stats := loadWith(t, srv, file, cfg)
	runs, _ := srv.DB().Count(catalog.TLoadRuns)
	if runs != 1 {
		t.Fatalf("load_runs = %d, want 1", runs)
	}
	errRows, _ := srv.DB().Count(catalog.TLoadErrors)
	if int(errRows) != stats.RowsSkipped {
		t.Fatalf("load_errors = %d, want %d", errRows, stats.RowsSkipped)
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{RowsRead: 10, RowsLoaded: 8, RowsSkipped: 2, NominalBytes: 100, Elapsed: 5,
		RowsLoadedByTable: map[string]int{"x": 8}, SkippedByTable: map[string]int{"x": 2}}
	b := Stats{RowsRead: 5, RowsLoaded: 5, NominalBytes: 50, Elapsed: 9,
		RowsLoadedByTable: map[string]int{"x": 3, "y": 2}}
	a.Merge(b)
	if a.RowsRead != 15 || a.RowsLoaded != 13 || a.NominalBytes != 150 {
		t.Fatalf("merge totals: %+v", a)
	}
	if a.Elapsed != 9 {
		t.Fatalf("merge should keep the max elapsed, got %v", a.Elapsed)
	}
	if a.RowsLoadedByTable["x"] != 11 || a.RowsLoadedByTable["y"] != 2 {
		t.Fatalf("per-table merge: %v", a.RowsLoadedByTable)
	}
	var zero Stats
	zero.Merge(b)
	if zero.RowsLoaded != 5 || zero.RowsLoadedByTable["x"] != 3 {
		t.Fatalf("merge into zero value: %+v", zero)
	}
	if (Stats{}).MBPerSecond() != 0 {
		t.Fatal("zero stats throughput should be 0")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.BatchSize != 40 || cfg.ArraySize != 1000 {
		t.Fatalf("defaults: %+v", cfg)
	}
	d := DefaultConfig()
	if d.BatchSize != 40 || d.ArraySize != 1000 || !d.ChargeStaging {
		t.Fatalf("DefaultConfig: %+v", d)
	}
}

// TestRowAccountingProperty: for arbitrary (small) error rates and batch
// sizes, every input row is either loaded, skipped by the database, or
// rejected by the client-side transform — each exactly once — and the
// repository never contains an orphan.
func TestRowAccountingProperty(t *testing.T) {
	f := func(seed int64, errPct, batchRaw uint8) bool {
		errorRate := float64(errPct%20) / 100.0
		batch := int(batchRaw%60) + 5
		_, srv := testEnvQuiet()
		file := catalog.Generate(catalog.GenSpec{
			SizeMB: 1.5, Seed: seed, RunID: 1, IDBase: 1000, ErrorRate: errorRate,
		})
		cfg := DefaultConfig()
		cfg.BatchSize = batch
		var stats Stats
		var loadErr error
		srv.Kernel().Spawn("loader", func(p *des.Proc) {
			conn := srv.Connect(p)
			defer conn.Close()
			loader, err := NewLoader(conn, cfg)
			if err != nil {
				loadErr = err
				return
			}
			stats, loadErr = loader.LoadFiles([]*catalog.File{file})
		})
		srv.Kernel().Run()
		if loadErr != nil {
			return false
		}
		if stats.RowsLoaded+stats.RowsSkipped+stats.ParseErrors != stats.RowsRead {
			return false
		}
		if stats.RowsRead != file.DataRows {
			return false
		}
		loaded := int64(0)
		for _, table := range catalog.CatalogTables() {
			n, _ := srv.DB().Count(table)
			loaded += n
		}
		if loaded != int64(stats.RowsLoaded) {
			return false
		}
		orphans, _ := srv.DB().VerifyIntegrity()
		return orphans == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// testEnvQuiet is testEnv without the testing.T plumbing, for property tests.
func testEnvQuiet() (*des.Kernel, *sqlbatch.Server) {
	k := des.NewKernel(7)
	db := relstore.MustOpen(catalog.NewSchema())
	txn, _ := db.Begin()
	_ = catalog.SeedReference(txn, 8)
	_, _ = txn.Commit()
	return k, sqlbatch.NewServer(k, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())
}
