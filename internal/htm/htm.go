// Package htm implements the Hierarchical Triangular Mesh (HTM), the
// recursive partitioning of the celestial sphere into spherical triangles
// used by sky-survey repositories to index objects by position.
//
// The SkyLoader paper lists computation of the HTM id (htmid) and sky
// coordinates among the per-row transformations performed while loading
// catalog data (§3, §4.5.1: the htmid index is the one secondary index kept
// during intensive loading).  This package provides the real computation:
// starting from the eight faces of an octahedron inscribed in the unit
// sphere, each triangle is subdivided into four children by the midpoints of
// its edges; the id accumulates two bits per level.
package htm

import (
	"fmt"
	"math"
)

// Vector is a 3-D unit vector on the celestial sphere.
type Vector struct {
	X, Y, Z float64
}

// FromRaDec converts equatorial coordinates in degrees to a unit vector.
func FromRaDec(raDeg, decDeg float64) Vector {
	ra := raDeg * math.Pi / 180
	dec := decDeg * math.Pi / 180
	cd := math.Cos(dec)
	return Vector{X: math.Cos(ra) * cd, Y: math.Sin(ra) * cd, Z: math.Sin(dec)}
}

// RaDec converts a unit vector back to equatorial coordinates in degrees,
// with RA in [0, 360).
func (v Vector) RaDec() (raDeg, decDeg float64) {
	ra := math.Atan2(v.Y, v.X) * 180 / math.Pi
	if ra < 0 {
		ra += 360
	}
	dec := math.Asin(clamp(v.Z, -1, 1)) * 180 / math.Pi
	return ra, dec
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Normalize returns the unit vector in the direction of v.
func (v Vector) Normalize() Vector {
	n := math.Sqrt(v.X*v.X + v.Y*v.Y + v.Z*v.Z)
	if n == 0 {
		return Vector{Z: 1}
	}
	return Vector{X: v.X / n, Y: v.Y / n, Z: v.Z / n}
}

// add and mid are small helpers on vectors.
func add(a, b Vector) Vector { return Vector{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }
func mid(a, b Vector) Vector { return add(a, b).Normalize() }
func cross(a, b Vector) Vector {
	return Vector{
		X: a.Y*b.Z - a.Z*b.Y,
		Y: a.Z*b.X - a.X*b.Z,
		Z: a.X*b.Y - a.Y*b.X,
	}
}
func dot(a, b Vector) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// inside reports whether p lies inside (or on the boundary of) the spherical
// triangle v0,v1,v2 given in counter-clockwise order.
func inside(p, v0, v1, v2 Vector) bool {
	const eps = -1e-12
	return dot(cross(v0, v1), p) >= eps &&
		dot(cross(v1, v2), p) >= eps &&
		dot(cross(v2, v0), p) >= eps
}

// The eight initial octahedron faces, in the traditional HTM order.  S0-S3
// cover the southern hemisphere, N0-N3 the northern.  Ids for the root
// triangles are 8..15 (S0=8, ..., N3=15), matching the standard encoding in
// which the leading bit pattern 0b1 precedes two bits per subdivision level.
var (
	v0 = Vector{0, 0, 1} // north pole
	v1 = Vector{1, 0, 0}
	v2 = Vector{0, 1, 0}
	v3 = Vector{-1, 0, 0}
	v4 = Vector{0, -1, 0}
	v5 = Vector{0, 0, -1} // south pole
)

type face struct {
	name    string
	id      int64
	a, b, c Vector
}

var faces = []face{
	{"S0", 8, v1, v5, v2},
	{"S1", 9, v2, v5, v3},
	{"S2", 10, v3, v5, v4},
	{"S3", 11, v4, v5, v1},
	{"N0", 12, v1, v0, v4},
	{"N1", 13, v4, v0, v3},
	{"N2", 14, v3, v0, v2},
	{"N3", 15, v2, v0, v1},
}

// MaxDepth is the deepest supported subdivision (2 bits per level in an
// int64, with 4 bits used by the root face encoding).
const MaxDepth = 27

// DefaultDepth matches the level the Palomar-Quest and SDSS catalogs used for
// object htmids (level 20, ~0.3 arcsecond triangles).
const DefaultDepth = 20

// Lookup returns the HTM id of the triangle at the given depth containing the
// position (ra, dec) in degrees.
func Lookup(raDeg, decDeg float64, depth int) (int64, error) {
	if depth < 0 || depth > MaxDepth {
		return 0, fmt.Errorf("htm: depth %d out of range [0,%d]", depth, MaxDepth)
	}
	p := FromRaDec(raDeg, decDeg)
	var cur face
	found := false
	for _, f := range faces {
		if inside(p, f.a, f.b, f.c) {
			cur = f
			found = true
			break
		}
	}
	if !found {
		// Numerical corner case exactly on an edge/vertex: fall back to the
		// face whose centroid is closest.
		best := -1.0
		for _, f := range faces {
			c := add(add(f.a, f.b), f.c).Normalize()
			if d := dot(c, p); d > best {
				best = d
				cur = f
			}
		}
	}
	id := cur.id
	a, b, c := cur.a, cur.b, cur.c
	for level := 0; level < depth; level++ {
		w0 := mid(b, c)
		w1 := mid(a, c)
		w2 := mid(a, b)
		switch {
		case inside(p, a, w2, w1):
			id = id<<2 | 0
			b, c = w2, w1
		case inside(p, w2, b, w0):
			id = id<<2 | 1
			a, c = w2, w0
		case inside(p, w1, w0, c):
			id = id<<2 | 2
			a, b = w1, w0
		default:
			id = id<<2 | 3
			a, b, c = w0, w1, w2
		}
	}
	return id, nil
}

// MustLookup is Lookup that panics on error; intended for static depths.
func MustLookup(raDeg, decDeg float64, depth int) int64 {
	id, err := Lookup(raDeg, decDeg, depth)
	if err != nil {
		panic(err)
	}
	return id
}

// Depth returns the subdivision depth encoded in an HTM id.
func Depth(id int64) (int, error) {
	if id < 8 {
		return 0, fmt.Errorf("htm: invalid id %d", id)
	}
	bits := 0
	for v := id; v > 0; v >>= 1 {
		bits++
	}
	// Root ids use 4 bits; each level adds 2.
	if (bits-4)%2 != 0 {
		return 0, fmt.Errorf("htm: id %d has invalid bit length %d", id, bits)
	}
	d := (bits - 4) / 2
	if d > MaxDepth {
		return 0, fmt.Errorf("htm: id %d implies depth %d beyond maximum %d", id, d, MaxDepth)
	}
	return d, nil
}

// Parent returns the id of the triangle one level up; ids at depth 0 return
// themselves.
func Parent(id int64) int64 {
	if d, err := Depth(id); err != nil || d == 0 {
		return id
	}
	return id >> 2
}

// Center returns the centroid (ra, dec in degrees) of the triangle with the
// given HTM id.
func Center(id int64) (raDeg, decDeg float64, err error) {
	d, err := Depth(id)
	if err != nil {
		return 0, 0, err
	}
	rootID := id >> uint(2*d)
	var cur face
	found := false
	for _, f := range faces {
		if f.id == rootID {
			cur = f
			found = true
			break
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("htm: invalid root in id %d", id)
	}
	a, b, c := cur.a, cur.b, cur.c
	for level := d - 1; level >= 0; level-- {
		child := (id >> uint(2*level)) & 3
		w0 := mid(b, c)
		w1 := mid(a, c)
		w2 := mid(a, b)
		switch child {
		case 0:
			b, c = w2, w1
		case 1:
			a, c = w2, w0
		case 2:
			a, b = w1, w0
		case 3:
			a, b, c = w0, w1, w2
		}
	}
	centroid := add(add(a, b), c).Normalize()
	ra, dec := centroid.RaDec()
	return ra, dec, nil
}

// Name renders an HTM id in the conventional textual form, e.g. "N012331".
func Name(id int64) (string, error) {
	d, err := Depth(id)
	if err != nil {
		return "", err
	}
	rootID := id >> uint(2*d)
	var root string
	for _, f := range faces {
		if f.id == rootID {
			root = f.name
			break
		}
	}
	if root == "" {
		return "", fmt.Errorf("htm: invalid root in id %d", id)
	}
	out := []byte(root)
	for level := d - 1; level >= 0; level-- {
		child := (id >> uint(2*level)) & 3
		out = append(out, byte('0'+child))
	}
	return string(out), nil
}
