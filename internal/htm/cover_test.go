package htm

import (
	"math"
	"math/rand"
	"testing"
)

func TestConeCoverValidation(t *testing.T) {
	if _, err := ConeCover(10, 10, 0, 5); err == nil {
		t.Fatal("zero radius accepted")
	}
	if _, err := ConeCover(10, 10, 1, -1); err == nil {
		t.Fatal("negative depth accepted")
	}
	if _, err := ConeCover(10, 10, 1, MaxDepth+1); err == nil {
		t.Fatal("excessive depth accepted")
	}
}

func TestConeCoverFullSphere(t *testing.T) {
	rs, err := ConeCover(0, 0, 180, 3)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range rs {
		total += r.Trixels()
	}
	if want := int64(8 << (2 * 3)); total != want {
		t.Fatalf("full-sphere cover holds %d trixels, want %d", total, want)
	}
}

func TestConeCoverRangesSortedDisjoint(t *testing.T) {
	rs, err := ConeCover(120, -40, 2.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("empty cover")
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Lo <= rs[i-1].Hi+1 {
			t.Fatalf("ranges %d and %d not disjoint/merged: %+v %+v", i-1, i, rs[i-1], rs[i])
		}
	}
}

// TestConeCoverNeverMisses is the core soundness property: every point within
// the cone lies in a trixel the cover includes, across random cones, depths
// and points concentrated near the cap boundary.
func TestConeCoverNeverMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		ra := rng.Float64() * 360
		dec := -85 + rng.Float64()*170
		radius := math.Pow(10, -2+rng.Float64()*2.5) // 0.01 .. ~30 degrees
		depth := rng.Intn(9)
		rs, err := ConeCover(ra, dec, radius, depth)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 50; p++ {
			// Sample points inside the cap, biased towards the rim where an
			// undercover would show first.
			frac := 1.0
			if p%3 == 0 {
				frac = rng.Float64()
			}
			pra, pdec := offsetPoint(rng, ra, dec, radius*frac)
			id, err := Lookup(pra, pdec, depth)
			if err != nil {
				t.Fatal(err)
			}
			if !rangesContain(rs, id) {
				t.Fatalf("trial %d: point (%.6f, %.6f) within %.4f deg of (%.6f, %.6f) "+
					"maps to trixel %d at depth %d, not covered by %v",
					trial, pra, pdec, radius, ra, dec, id, depth, rs)
			}
		}
	}
}

// offsetPoint returns a point at angular distance <= d degrees from (ra, dec),
// built by rotating the centre vector about a random orthogonal axis.
func offsetPoint(rng *rand.Rand, raDeg, decDeg, dDeg float64) (float64, float64) {
	c := FromRaDec(raDeg, decDeg)
	// A random vector not parallel to c gives an orthogonal rotation axis.
	r := Vector{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Normalize()
	axis := cross(c, r).Normalize()
	theta := dDeg * math.Pi / 180 * (0.999 * rng.Float64())
	// Rodrigues rotation of c about axis by theta.
	cosT, sinT := math.Cos(theta), math.Sin(theta)
	k := axis
	kxc := cross(k, c)
	kdc := dot(k, c)
	rot := Vector{
		X: c.X*cosT + kxc.X*sinT + k.X*kdc*(1-cosT),
		Y: c.Y*cosT + kxc.Y*sinT + k.Y*kdc*(1-cosT),
		Z: c.Z*cosT + kxc.Z*sinT + k.Z*kdc*(1-cosT),
	}
	return rot.Normalize().RaDec()
}

func rangesContain(rs []Range, id int64) bool {
	for _, r := range rs {
		if id >= r.Lo && id <= r.Hi {
			return true
		}
	}
	return false
}

func TestCoverDepthMonotone(t *testing.T) {
	if d := CoverDepth(45); d != 0 {
		t.Fatalf("depth for 45 deg = %d", d)
	}
	prev := CoverDepth(30)
	for _, r := range []float64{10, 3, 1, 0.3, 0.1, 0.03, 0.01} {
		d := CoverDepth(r)
		if d < prev {
			t.Fatalf("CoverDepth(%v) = %d < CoverDepth of larger radius %d", r, d, prev)
		}
		prev = d
	}
	if prev > DefaultDepth {
		t.Fatalf("deepest cover depth %d exceeds object depth", prev)
	}
}

func TestDescendantRange(t *testing.T) {
	r := Range{Lo: 8, Hi: 8}.DescendantRange(2)
	if r.Lo != 8<<4 || r.Hi != (9<<4)-1 {
		t.Fatalf("descendant range of trixel 8 = %+v", r)
	}
	if r.Trixels() != 16 {
		t.Fatalf("trixel count = %d, want 16", r.Trixels())
	}
}
