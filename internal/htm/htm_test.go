package htm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromRaDecRoundTrip(t *testing.T) {
	cases := []struct{ ra, dec float64 }{
		{0, 0}, {90, 45}, {180, -45}, {359.9, 89}, {123.456, -67.89}, {271.3, 12.0},
	}
	for _, c := range cases {
		v := FromRaDec(c.ra, c.dec)
		ra, dec := v.RaDec()
		if math.Abs(ra-c.ra) > 1e-9 || math.Abs(dec-c.dec) > 1e-9 {
			t.Errorf("round trip (%v,%v) -> (%v,%v)", c.ra, c.dec, ra, dec)
		}
		norm := math.Sqrt(v.X*v.X + v.Y*v.Y + v.Z*v.Z)
		if math.Abs(norm-1) > 1e-12 {
			t.Errorf("vector for (%v,%v) not unit length: %v", c.ra, c.dec, norm)
		}
	}
}

func TestLookupDepthZeroRoots(t *testing.T) {
	// Depth-0 ids must be one of the eight root faces (8..15).
	positions := []struct{ ra, dec float64 }{
		{45, 45}, {135, 45}, {225, 45}, {315, 45},
		{45, -45}, {135, -45}, {225, -45}, {315, -45},
	}
	seen := map[int64]bool{}
	for _, p := range positions {
		id, err := Lookup(p.ra, p.dec, 0)
		if err != nil {
			t.Fatal(err)
		}
		if id < 8 || id > 15 {
			t.Fatalf("root id %d out of range for (%v,%v)", id, p.ra, p.dec)
		}
		seen[id] = true
	}
	if len(seen) != 8 {
		t.Fatalf("expected to hit all 8 root triangles, hit %d", len(seen))
	}
}

func TestLookupDepthEncoding(t *testing.T) {
	for depth := 0; depth <= 20; depth += 5 {
		id, err := Lookup(123.4, -21.7, depth)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Depth(id)
		if err != nil {
			t.Fatal(err)
		}
		if d != depth {
			t.Fatalf("Depth(%d) = %d, want %d", id, d, depth)
		}
	}
	if _, err := Lookup(0, 0, -1); err == nil {
		t.Fatal("negative depth should error")
	}
	if _, err := Lookup(0, 0, MaxDepth+1); err == nil {
		t.Fatal("excessive depth should error")
	}
}

func TestParentRelationship(t *testing.T) {
	id := MustLookup(200.5, 33.3, 10)
	parent := Parent(id)
	if parent != id>>2 {
		t.Fatalf("Parent(%d) = %d", id, parent)
	}
	d, _ := Depth(parent)
	if d != 9 {
		t.Fatalf("parent depth = %d", d)
	}
	// The parent id must equal a direct lookup at depth 9.
	if got := MustLookup(200.5, 33.3, 9); got != parent {
		t.Fatalf("lookup at depth 9 = %d, parent = %d", got, parent)
	}
	root := MustLookup(200.5, 33.3, 0)
	if Parent(root) != root {
		t.Fatal("root parent should be itself")
	}
}

func TestCenterInsideTriangle(t *testing.T) {
	// The centroid of a triangle must map back to the same triangle.
	for _, pos := range []struct{ ra, dec float64 }{{10, 10}, {100, -50}, {250, 70}, {330, -5}} {
		id := MustLookup(pos.ra, pos.dec, 8)
		ra, dec, err := Center(id)
		if err != nil {
			t.Fatal(err)
		}
		back := MustLookup(ra, dec, 8)
		if back != id {
			t.Errorf("center of %d maps to %d", id, back)
		}
	}
}

func TestCenterCloseToSource(t *testing.T) {
	// At depth 20 a triangle is sub-arcsecond, so the center must be very
	// close to the original position.
	ra0, dec0 := 187.25, 2.05
	id := MustLookup(ra0, dec0, 20)
	ra, dec, err := Center(id)
	if err != nil {
		t.Fatal(err)
	}
	distDeg := angularDistance(ra0, dec0, ra, dec)
	if distDeg > 0.001 { // 3.6 arcsec bound, generous
		t.Fatalf("center %v,%v is %v deg from source", ra, dec, distDeg)
	}
}

func angularDistance(ra1, dec1, ra2, dec2 float64) float64 {
	a := FromRaDec(ra1, dec1)
	b := FromRaDec(ra2, dec2)
	d := dot(a, b)
	if d > 1 {
		d = 1
	}
	return math.Acos(d) * 180 / math.Pi
}

func TestName(t *testing.T) {
	id := MustLookup(45, 45, 3)
	name, err := Name(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(name) != 2+3 {
		t.Fatalf("Name = %q, want root plus 3 digits", name)
	}
	if name[0] != 'N' && name[0] != 'S' {
		t.Fatalf("Name = %q should start with N or S", name)
	}
	if _, err := Name(3); err == nil {
		t.Fatal("invalid id should error")
	}
}

func TestDepthInvalidIDs(t *testing.T) {
	if _, err := Depth(0); err == nil {
		t.Fatal("Depth(0) should error")
	}
	if _, err := Depth(7); err == nil {
		t.Fatal("Depth(7) should error")
	}
	if _, err := Depth(16); err == nil {
		// 16 has 5 bits -> (5-4) odd -> invalid
		t.Fatal("Depth(16) should error")
	}
}

// TestLookupProperty checks for random positions that ids are stable, in
// range, and consistent across depths (each deeper id refines its parent).
func TestLookupProperty(t *testing.T) {
	f := func(raSeed, decSeed uint32) bool {
		ra := float64(raSeed%360000) / 1000.0
		dec := float64(decSeed%180000)/1000.0 - 90
		id12, err := Lookup(ra, dec, 12)
		if err != nil {
			return false
		}
		id12b := MustLookup(ra, dec, 12)
		if id12 != id12b {
			return false
		}
		d, err := Depth(id12)
		if err != nil || d != 12 {
			return false
		}
		// Consistency: the depth-11 lookup equals the parent of the depth-12 id.
		id11 := MustLookup(ra, dec, 11)
		return Parent(id12) == id11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDistinctPositionsDistinctIDs checks that two clearly separated
// positions never share a deep HTM id.
func TestDistinctPositionsDistinctIDs(t *testing.T) {
	a := MustLookup(10, 10, 20)
	b := MustLookup(190, -10, 20)
	if a == b {
		t.Fatal("antipodal positions share an id")
	}
}

func TestPolesAndWrapAround(t *testing.T) {
	for _, pos := range []struct{ ra, dec float64 }{{0, 90}, {0, -90}, {0, 0}, {360, 0}, {359.999999, 45}} {
		id, err := Lookup(pos.ra, pos.dec, 15)
		if err != nil {
			t.Fatalf("Lookup(%v,%v): %v", pos.ra, pos.dec, err)
		}
		if d, _ := Depth(id); d != 15 {
			t.Fatalf("depth at (%v,%v) = %d", pos.ra, pos.dec, d)
		}
	}
}
