package htm

import (
	"fmt"
	"math"
	"sort"
)

// Range is an inclusive range [Lo, Hi] of trixel ids at one subdivision
// depth.  Because HTM ids are prefix codes, the ids of all depth-d
// descendants of a trixel form one contiguous range, which is what makes a
// cover directly usable as a set of B-tree range probes on an htmid index.
type Range struct {
	Lo, Hi int64
}

// Trixels returns the number of trixels in the range.
func (r Range) Trixels() int64 { return r.Hi - r.Lo + 1 }

// DescendantRange widens a range of depth-d trixel ids to the corresponding
// range of depth-(d+levels) descendant ids.
func (r Range) DescendantRange(levels int) Range {
	shift := uint(2 * levels)
	return Range{Lo: r.Lo << shift, Hi: ((r.Hi + 1) << shift) - 1}
}

// Intersect returns the overlap of two ranges at the same depth and whether
// it is non-empty.  Shard partition maps use it to route a cone cover to the
// trixel ranges each shard actually owns.
func (r Range) Intersect(o Range) (Range, bool) {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if lo > hi {
		return Range{}, false
	}
	return Range{Lo: lo, Hi: hi}, true
}

// coverEps pads the cone radius during pruning so trixels touching the cap
// boundary within floating-point noise are never dropped.  Overcovering is
// harmless — candidates are filtered by exact distance afterwards — but an
// undercover would silently lose matching objects.
const coverEps = 1e-9

// ConeCover returns sorted, disjoint trixel-id ranges at the given depth
// whose union covers the spherical cap of radiusDeg around (raDeg, decDeg).
//
// The cover is conservative: every trixel that intersects the cap is
// included (some returned trixels may only graze it).  The test is the
// bounding-cap comparison — a trixel is kept when the angular distance from
// its centroid to the cone centre is at most the trixel's circumradius plus
// the cone radius — which never misses an intersecting trixel because the
// whole trixel lies within its centroid's circumradius.  Subtrees entirely
// inside the cap are emitted without further descent, so the output size
// scales with the boundary, not the area.
func ConeCover(raDeg, decDeg, radiusDeg float64, depth int) ([]Range, error) {
	if depth < 0 || depth > MaxDepth {
		return nil, fmt.Errorf("htm: cover depth %d out of range [0,%d]", depth, MaxDepth)
	}
	if radiusDeg <= 0 {
		return nil, fmt.Errorf("htm: cover radius must be positive, got %v", radiusDeg)
	}
	if radiusDeg >= 180 {
		// The cap is the whole sphere: all trixels at the depth.
		all := Range{Lo: 8, Hi: 15}.DescendantRange(depth)
		return []Range{all}, nil
	}
	c := coverer{
		center: FromRaDec(raDeg, decDeg),
		radius: radiusDeg*math.Pi/180 + coverEps,
		depth:  depth,
	}
	for _, f := range faces {
		c.visit(f.id, f.a, f.b, f.c, 0)
	}
	return mergeRanges(c.out), nil
}

type coverer struct {
	center Vector
	radius float64 // radians, padded
	depth  int
	out    []Range
}

// visit classifies one trixel against the cap and either prunes it, emits its
// whole depth-level subtree, or recurses into its four children.
func (c *coverer) visit(id int64, a, b, v Vector, level int) {
	centroid := add(add(a, b), v).Normalize()
	circum := maxAngle(centroid, a, b, v)
	dist := angle(centroid, c.center)

	if dist > circum+c.radius {
		return // disjoint from the cap
	}
	if dist+circum <= c.radius || level == c.depth {
		// Fully inside the cap (emit the whole subtree) or at target depth.
		c.out = append(c.out, Range{Lo: id, Hi: id}.DescendantRange(c.depth-level))
		return
	}
	w0 := mid(b, v)
	w1 := mid(a, v)
	w2 := mid(a, b)
	c.visit(id<<2|0, a, w2, w1, level+1)
	c.visit(id<<2|1, w2, b, w0, level+1)
	c.visit(id<<2|2, w1, w0, v, level+1)
	c.visit(id<<2|3, w0, w1, w2, level+1)
}

// angle returns the angular distance between two unit vectors in radians.
func angle(a, b Vector) float64 {
	return math.Acos(clamp(dot(a, b), -1, 1))
}

// maxAngle returns the largest angular distance from p to any of the vectors.
func maxAngle(p Vector, vs ...Vector) float64 {
	max := 0.0
	for _, v := range vs {
		if d := angle(p, v); d > max {
			max = d
		}
	}
	return max
}

// mergeRanges sorts ranges and coalesces adjacent or overlapping ones.
func mergeRanges(rs []Range) []Range {
	if len(rs) <= 1 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// CoverDepth picks a coarse HTM depth whose trixels are comparable in size to
// the search radius (each level halves the triangle side; level-0 triangles
// span ~90 degrees).  It is the depth cone searches and result-cache keys use,
// so both must derive it from the same place.
func CoverDepth(radiusDeg float64) int {
	depth := 0
	size := 90.0
	for size > radiusDeg*2 && depth < DefaultDepth {
		size /= 2
		depth++
	}
	if depth > 0 {
		depth--
	}
	return depth
}
