package exec

import (
	"fmt"
	"time"

	"skyloader/internal/des"
)

// NewDES wraps a discrete-event kernel in the Scheduler interface.  The
// adapter delegates directly: spawn order, event ordering and random draws
// are exactly those of the underlying kernel, so simulations driven through
// the abstraction reproduce pre-abstraction traces bit for bit.
func NewDES(k *des.Kernel) Scheduler { return &desScheduler{k: k} }

type desScheduler struct {
	k *des.Kernel
}

func (s *desScheduler) Now() time.Duration { return s.k.Now() }

func (s *desScheduler) Spawn(name string, fn func(Worker)) {
	s.k.Spawn(name, func(p *des.Proc) { fn(&desWorker{p: p}) })
}

func (s *desScheduler) SpawnAt(d time.Duration, name string, fn func(Worker)) {
	s.k.SpawnAt(d, name, func(p *des.Proc) { fn(&desWorker{p: p}) })
}

func (s *desScheduler) NewResource(name string, capacity int) Resource {
	return &desResource{r: des.NewResource(s.k, name, capacity)}
}

func (s *desScheduler) Run() time.Duration { return s.k.Run() }

func (s *desScheduler) RandFloat64() float64 { return s.k.Rand().Float64() }

func (s *desScheduler) Deterministic() bool { return true }

// Kernel returns the wrapped kernel (used by callers that drive the kernel
// directly, e.g. experiments that schedule bare events).
func (s *desScheduler) Kernel() *des.Kernel { return s.k }

// KernelOf returns the DES kernel behind a scheduler, or nil when the
// scheduler is not DES-backed.
func KernelOf(s Scheduler) *des.Kernel {
	if ds, ok := s.(interface{ Kernel() *des.Kernel }); ok {
		return ds.Kernel()
	}
	return nil
}

// WorkerForProc wraps an existing simulation process in the Worker interface
// so code that spawns processes directly on a kernel can still talk to
// exec-based layers.
func WorkerForProc(p *des.Proc) Worker { return &desWorker{p: p} }

type desWorker struct {
	p *des.Proc
}

func (w *desWorker) Name() string          { return w.p.Name() }
func (w *desWorker) Now() time.Duration    { return w.p.Now() }
func (w *desWorker) Sleep(d time.Duration) { w.p.Hold(d) }
func (w *desWorker) Proc() *des.Proc       { return w.p }

// ProcOf returns the simulation process behind a worker, or nil when the
// worker is not DES-backed.
func ProcOf(w Worker) *des.Proc {
	if dw, ok := w.(interface{ Proc() *des.Proc }); ok {
		return dw.Proc()
	}
	return nil
}

type desResource struct {
	r *des.Resource
}

func (r *desResource) Name() string  { return r.r.Name() }
func (r *desResource) Capacity() int { return r.r.Capacity() }
func (r *desResource) InUse() int    { return r.r.InUse() }
func (r *desResource) QueueLen() int { return r.r.QueueLen() }

func (r *desResource) Acquire(w Worker, n int) {
	r.r.Acquire(mustProc(w, r.r.Name()), n)
}

func (r *desResource) Release(w Worker, n int) {
	r.r.Release(mustProc(w, r.r.Name()), n)
}

func (r *desResource) Stats() ResourceStats {
	st := r.r.Stats()
	return ResourceStats{
		Name:          st.Name,
		Capacity:      st.Capacity,
		Grants:        st.Grants,
		Waits:         st.Waits,
		TotalWait:     st.TotalWait,
		MaxInUse:      st.MaxInUse,
		MaxQueueDepth: st.MaxQueueDepth,
		Utilization:   st.Utilization,
	}
}

func mustProc(w Worker, resource string) *des.Proc {
	p := ProcOf(w)
	if p == nil {
		panic(fmt.Sprintf("exec: DES resource %q used with non-DES worker %q", resource, w.Name()))
	}
	return p
}
