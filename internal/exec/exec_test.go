package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skyloader/internal/des"
)

// TestDESAdapterDeterminism pins that driving the kernel through the
// abstraction reproduces the same virtual trace run after run.
func TestDESAdapterDeterminism(t *testing.T) {
	trace := func() string {
		k := des.NewKernel(42)
		s := NewDES(k)
		if !s.Deterministic() {
			t.Fatal("DES scheduler must report Deterministic")
		}
		res := s.NewResource("slots", 2)
		out := ""
		for i := 0; i < 4; i++ {
			i := i
			s.Spawn(fmt.Sprintf("w%d", i), func(w Worker) {
				res.Acquire(w, 1)
				w.Sleep(time.Duration(i+1) * time.Millisecond)
				out += fmt.Sprintf("%s@%s;", w.Name(), w.Now())
				res.Release(w, 1)
			})
		}
		end := s.Run()
		return fmt.Sprintf("%s end=%s", out, end)
	}
	a, b := trace(), trace()
	if a != b {
		t.Fatalf("non-deterministic DES trace:\n%s\n%s", a, b)
	}
	if a == " end=0s" {
		t.Fatalf("trace is empty: %q", a)
	}
}

func TestKernelOfAndProcOf(t *testing.T) {
	k := des.NewKernel(1)
	s := NewDES(k)
	if KernelOf(s) != k {
		t.Fatal("KernelOf should return the wrapped kernel")
	}
	s.Spawn("w", func(w Worker) {
		if ProcOf(w) == nil {
			t.Error("ProcOf should return the wrapped proc")
		}
	})
	s.Run()

	rt := NewRealtime(RealtimeConfig{})
	if KernelOf(rt) != nil {
		t.Fatal("KernelOf on realtime scheduler should be nil")
	}
	rt.Spawn("w", func(w Worker) {
		if ProcOf(w) != nil {
			t.Error("ProcOf on realtime worker should be nil")
		}
	})
	rt.Run()
}

// TestRealtimeResourceCapacity hammers a realtime resource from many
// goroutines and checks the capacity invariant is never violated.
func TestRealtimeResourceCapacity(t *testing.T) {
	rt := NewRealtime(RealtimeConfig{Seed: 7})
	const capacity = 3
	res := rt.NewResource("slots", capacity)
	var cur, max, violations atomic.Int64
	for i := 0; i < 16; i++ {
		rt.Spawn(fmt.Sprintf("w%d", i), func(w Worker) {
			for j := 0; j < 50; j++ {
				res.Acquire(w, 1)
				n := cur.Add(1)
				if n > capacity {
					violations.Add(1)
				}
				for {
					m := max.Load()
					if n <= m || max.CompareAndSwap(m, n) {
						break
					}
				}
				cur.Add(-1)
				res.Release(w, 1)
			}
		})
	}
	rt.Run()
	if v := violations.Load(); v > 0 {
		t.Fatalf("capacity exceeded %d times", v)
	}
	st := res.Stats()
	if st.Grants != 16*50 {
		t.Fatalf("grants = %d, want %d", st.Grants, 16*50)
	}
	if st.MaxInUse > capacity {
		t.Fatalf("MaxInUse = %d exceeds capacity %d", st.MaxInUse, capacity)
	}
}

// TestRealtimeResourceFIFO checks that a queued large request is not starved
// by later small ones (strict FIFO admission, matching des.Resource).
func TestRealtimeResourceFIFO(t *testing.T) {
	rt := NewRealtime(RealtimeConfig{})
	res := rt.NewResource("slots", 2)
	w0 := make(chan struct{})
	holderIn := make(chan struct{})
	release := make(chan struct{})
	var bigGranted atomic.Bool

	rt.Spawn("holder", func(w Worker) {
		res.Acquire(w, 2)
		close(holderIn)
		<-release
		res.Release(w, 2)
	})
	rt.Spawn("big", func(w Worker) {
		<-holderIn
		close(w0)
		res.Acquire(w, 2) // queues behind holder
		bigGranted.Store(true)
		res.Release(w, 2)
	})
	rt.Spawn("small", func(w Worker) {
		<-w0
		// Give "big" a moment to enqueue first.
		for res.QueueLen() == 0 {
			time.Sleep(time.Millisecond)
		}
		res.Acquire(w, 1) // must wait behind "big" even though 0 in use later
		if !bigGranted.Load() {
			t.Error("small request admitted before queued big request (FIFO violated)")
		}
		res.Release(w, 1)
	})
	go func() {
		// Let big and small both enqueue, then free the units.
		for res.QueueLen() < 2 {
			time.Sleep(time.Millisecond)
		}
		close(release)
	}()
	rt.Run()
}

// TestRealtimeRunJoins verifies Run waits for workers spawned by workers.
func TestRealtimeRunJoins(t *testing.T) {
	rt := NewRealtime(RealtimeConfig{})
	var done atomic.Int64
	rt.Spawn("parent", func(w Worker) {
		for i := 0; i < 4; i++ {
			rt.Spawn("child", func(w Worker) { done.Add(1) })
		}
		done.Add(1)
	})
	rt.Run()
	if done.Load() != 5 {
		t.Fatalf("Run returned before all workers finished: %d/5", done.Load())
	}
}

// TestRealtimeRandConcurrent draws from the shared source concurrently; the
// race detector guards the locking discipline.
func TestRealtimeRandConcurrent(t *testing.T) {
	rt := NewRealtime(RealtimeConfig{Seed: 3})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				f := rt.RandFloat64()
				if f < 0 || f >= 1 {
					t.Errorf("RandFloat64 out of range: %v", f)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestRealtimeTimeScale verifies Sleep is a no-op at scale 0 and real at 1.
func TestRealtimeTimeScale(t *testing.T) {
	rt := NewRealtime(RealtimeConfig{})
	start := time.Now()
	rt.Spawn("w", func(w Worker) { w.Sleep(10 * time.Second) })
	rt.Run()
	if el := time.Since(start); el > time.Second {
		t.Fatalf("Sleep with TimeScale 0 actually slept (%s)", el)
	}

	rt2 := NewRealtime(RealtimeConfig{TimeScale: 1})
	start = time.Now()
	rt2.Spawn("w", func(w Worker) { w.Sleep(20 * time.Millisecond) })
	rt2.Run()
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("Sleep with TimeScale 1 returned too early (%s)", el)
	}
}
