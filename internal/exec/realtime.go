package exec

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RealtimeConfig controls the real-concurrency runtime.
type RealtimeConfig struct {
	// Seed seeds the runtime's random source (contention draws).  The source
	// is mutex-guarded; with goroutines racing for it the draw *sequence* is
	// not reproducible, only the distribution.
	Seed int64
	// TimeScale multiplies Worker.Sleep durations into real sleeps.  The
	// default of 0 makes Sleep a no-op: simulated service costs (the DES cost
	// model) are skipped entirely and a load runs as fast as the hardware
	// allows, which is what -wallclock mode measures.  Set it to 1.0 to pace
	// a real run at the cost model's predicted speed, or to e.g. 0.001 to
	// compress predicted time a thousandfold.
	TimeScale float64
}

// Realtime is the goroutine-backed Scheduler: every spawned worker is a real
// goroutine, the clock is the wall clock, and resources block on
// sync.Cond-style FIFO queues.  It implements Scheduler.
type Realtime struct {
	cfg   RealtimeConfig
	start time.Time
	wg    sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewRealtime creates a real-concurrency scheduler.  The clock starts now.
func NewRealtime(cfg RealtimeConfig) *Realtime {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Realtime{
		cfg:   cfg,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the wall-clock time elapsed since the scheduler was created.
func (rt *Realtime) Now() time.Duration { return time.Since(rt.start) }

// Spawn starts fn on its own goroutine immediately.
func (rt *Realtime) Spawn(name string, fn func(Worker)) { rt.SpawnAt(0, name, fn) }

// SpawnAt starts fn on its own goroutine after a real delay of d scaled by
// TimeScale (with TimeScale 0 the worker starts immediately: start staggers
// belong to the simulated Condor dispatch, not to a real load).
func (rt *Realtime) SpawnAt(d time.Duration, name string, fn func(Worker)) {
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		if d > 0 {
			rt.sleepScaled(d)
		}
		fn(&rtWorker{rt: rt, name: name})
	}()
}

// RunInline executes fn with a realtime Worker on the calling goroutine,
// implementing InlineRunner.  The caller's goroutine stands in for a spawned
// worker: it may acquire and release resources (FIFO-fair with spawned
// workers) and read the scheduler clock.  Inline work is intentionally NOT
// tracked by Run's wait group — a long-lived network server calls RunInline
// per request while Run-driven workloads come and go.
func (rt *Realtime) RunInline(name string, fn func(Worker)) {
	fn(&rtWorker{rt: rt, name: name})
}

// NewResource creates a mutex/condition-backed counted resource.
func (rt *Realtime) NewResource(name string, capacity int) Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("exec: resource %q must have positive capacity", name))
	}
	return &rtResource{rt: rt, name: name, capacity: capacity}
}

// Run waits for every spawned worker (including workers spawned by workers)
// to finish and returns the wall-clock elapsed time.
func (rt *Realtime) Run() time.Duration {
	rt.wg.Wait()
	return rt.Now()
}

// RandFloat64 draws from the mutex-guarded random source.
func (rt *Realtime) RandFloat64() float64 {
	rt.rngMu.Lock()
	defer rt.rngMu.Unlock()
	return rt.rng.Float64()
}

// Deterministic reports false: goroutine interleaving is up to the Go
// runtime and the host.
func (rt *Realtime) Deterministic() bool { return false }

func (rt *Realtime) sleepScaled(d time.Duration) {
	if rt.cfg.TimeScale <= 0 || d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) * rt.cfg.TimeScale))
}

type rtWorker struct {
	rt   *Realtime
	name string
}

func (w *rtWorker) Name() string          { return w.name }
func (w *rtWorker) Now() time.Duration    { return w.rt.Now() }
func (w *rtWorker) Sleep(d time.Duration) { w.rt.sleepScaled(d) }

// rtWaiter is one queued Acquire request; grant is closed by the releaser
// once the units have been assigned to the waiter.
type rtWaiter struct {
	n     int
	since time.Duration
	grant chan struct{}
}

// rtResource is a counted resource with strict-FIFO admission: a request
// queues behind earlier requests even when enough units are free for it, the
// same discipline des.Resource enforces.
type rtResource struct {
	rt       *Realtime
	name     string
	capacity int

	mu      sync.Mutex
	inUse   int
	waiters []*rtWaiter

	grantCount    int
	waitCount     int
	totalWait     time.Duration
	busyIntegral  time.Duration
	lastChange    time.Duration
	maxInUse      int
	maxQueueDepth int
}

func (r *rtResource) Name() string  { return r.name }
func (r *rtResource) Capacity() int { return r.capacity }

func (r *rtResource) InUse() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inUse
}

func (r *rtResource) QueueLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.waiters)
}

// accumulate updates the busy-time integral; r.mu must be held.
func (r *rtResource) accumulate() {
	now := r.rt.Now()
	if dt := now - r.lastChange; dt > 0 {
		r.busyIntegral += time.Duration(int64(dt) * int64(r.inUse))
	}
	r.lastChange = now
}

func (r *rtResource) Acquire(w Worker, n int) {
	if n <= 0 {
		return
	}
	if n > r.capacity {
		panic(fmt.Sprintf("exec: acquire %d units of %q exceeds capacity %d", n, r.name, r.capacity))
	}
	r.mu.Lock()
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.accumulate()
		r.inUse += n
		if r.inUse > r.maxInUse {
			r.maxInUse = r.inUse
		}
		r.grantCount++
		r.mu.Unlock()
		return
	}
	wt := &rtWaiter{n: n, since: r.rt.Now(), grant: make(chan struct{})}
	r.waiters = append(r.waiters, wt)
	if len(r.waiters) > r.maxQueueDepth {
		r.maxQueueDepth = len(r.waiters)
	}
	r.waitCount++
	r.mu.Unlock()

	<-wt.grant

	r.mu.Lock()
	r.totalWait += r.rt.Now() - wt.since
	r.mu.Unlock()
}

func (r *rtResource) Release(w Worker, n int) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.inUse {
		panic(fmt.Sprintf("exec: release %d units of %q but only %d in use", n, r.name, r.inUse))
	}
	r.accumulate()
	r.inUse -= n
	for len(r.waiters) > 0 {
		wt := r.waiters[0]
		if r.inUse+wt.n > r.capacity {
			break
		}
		r.waiters = r.waiters[1:]
		r.accumulate()
		r.inUse += wt.n
		if r.inUse > r.maxInUse {
			r.maxInUse = r.inUse
		}
		r.grantCount++
		close(wt.grant)
	}
}

func (r *rtResource) Stats() ResourceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.accumulate()
	elapsed := r.rt.Now()
	util := 0.0
	if elapsed > 0 {
		util = float64(r.busyIntegral) / float64(int64(elapsed)*int64(r.capacity))
	}
	return ResourceStats{
		Name:          r.name,
		Capacity:      r.capacity,
		Grants:        r.grantCount,
		Waits:         r.waitCount,
		TotalWait:     r.totalWait,
		MaxInUse:      r.maxInUse,
		MaxQueueDepth: r.maxQueueDepth,
		Utilization:   util,
	}
}
