// Package exec defines the execution abstraction that decouples the
// SkyLoader cluster from the engine that runs it.  Everything above this
// package — the sqlbatch client/server layer, the bulk loader, the parallel
// cluster coordinator — is written against three small interfaces:
//
//   - Scheduler: spawns workers, owns the clock and the contended resources.
//   - Worker:    the handle a running loader uses to read the clock and to
//     spend (virtual or real) time.
//   - Resource:  a counted, FIFO-queued resource such as server CPUs, disk
//     channels or transaction slots.
//
// Two implementations exist:
//
//   - NewDES wraps the deterministic discrete-event kernel of internal/des.
//     At most one worker runs at any instant, time is virtual, and a given
//     seed always reproduces the same trace — this is the mode every §5
//     figure of the paper is regenerated in.
//
//   - NewRealtime runs every worker as a plain goroutine with wall-clock
//     timing and sync.Mutex/sync.Cond-backed resources.  Loaders really run
//     in parallel, so a multi-core host shows genuine scaling, bounded by
//     the same transaction-slot and lock-manager limits the paper ran into.
//
// The contract shared by both: a worker must only be used by the goroutine
// the scheduler started for it, Resource.Acquire blocks the calling worker
// until the units are granted, and Run returns once all spawned workers have
// finished.
package exec

import "time"

// Clock exposes the scheduler's notion of elapsed time: virtual time in DES
// mode, wall-clock time since scheduler creation in realtime mode.
type Clock interface {
	// Now returns the time elapsed since the scheduler started.
	Now() time.Duration
}

// Worker is the execution handle passed to a spawned task.  Methods must be
// called only from the goroutine running the task body.
type Worker interface {
	Clock
	// Name returns the name given at spawn time.
	Name() string
	// Sleep advances the worker's clock by d: in DES mode the worker parks
	// while virtual time passes; in realtime mode it sleeps for d scaled by
	// the runtime's time-scale factor (zero by default, so simulated service
	// costs do not slow a real load down).
	Sleep(d time.Duration)
}

// Resource is a counted, FIFO-queued resource (CPUs, disk channels,
// transaction slots).  Acquire blocks the calling worker until the requested
// units are available; Release returns units and wakes queued waiters in
// arrival order.
type Resource interface {
	Name() string
	Capacity() int
	InUse() int
	QueueLen() int
	Acquire(w Worker, n int)
	Release(w Worker, n int)
	Stats() ResourceStats
}

// ResourceStats reports usage statistics for a resource.
type ResourceStats struct {
	Name          string
	Capacity      int
	Grants        int
	Waits         int
	TotalWait     time.Duration
	MaxInUse      int
	MaxQueueDepth int
	// Utilization is mean in-use units divided by capacity over the elapsed
	// time (0 if no time has elapsed).
	Utilization float64
}

// InlineRunner is the optional scheduler capability the network front door
// needs: running a worker body synchronously on the calling goroutine, so a
// transport that already owns a goroutine per request (an HTTP handler) can
// enter the scheduler's resource discipline without a spawn/join round trip.
// The realtime scheduler implements it — a goroutine is a goroutine, only
// the Worker handle matters.  The DES scheduler deliberately does not:
// virtual time has no meaning for a caller arriving on a real socket, and
// the kernel's single-runner discipline cannot admit foreign goroutines.
type InlineRunner interface {
	// RunInline executes fn with a Worker on the calling goroutine and
	// returns when fn does.
	RunInline(name string, fn func(Worker))
}

// Scheduler runs workers against a shared clock and a set of resources.
type Scheduler interface {
	Clock
	// Spawn starts a new worker running fn.  In DES mode the body runs under
	// the kernel's single-runner discipline; in realtime mode it runs on its
	// own goroutine immediately.
	Spawn(name string, fn func(Worker))
	// SpawnAt starts a new worker after delay d.
	SpawnAt(d time.Duration, name string, fn func(Worker))
	// NewResource creates a resource with the given capacity.
	NewResource(name string, capacity int) Resource
	// Run drives the workload to completion and returns the elapsed time:
	// it drains the event heap in DES mode and joins all worker goroutines
	// in realtime mode.
	Run() time.Duration
	// RandFloat64 draws from the scheduler's random source: the kernel's
	// seeded deterministic stream in DES mode, a mutex-guarded source in
	// realtime mode.
	RandFloat64() float64
	// Deterministic reports whether the scheduler replays identically for a
	// given seed (true for DES, false for realtime).  Layers that must keep
	// figure outputs byte-identical use it to pick deterministic code paths.
	Deterministic() bool
}
