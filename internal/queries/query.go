package queries

import (
	"fmt"
	"strconv"

	"skyloader/internal/catalog"
	"skyloader/internal/htm"
	"skyloader/internal/relstore"
)

// Query is one serveable science query.  The one-shot functions in this
// package answer a single caller; a serving layer needs three more things
// from a query, which this interface adds:
//
//   - Class groups queries for per-class latency accounting (every cone
//     search lands in the same histogram regardless of its parameters).
//   - Signature is a stable, parameter-complete cache key: two queries with
//     equal signatures must produce equal results against equal table
//     contents.
//   - Table names the table whose commit epoch governs cached results.
//
// Implementations are small value types so a workload trace is just a slice
// of them.
type Query interface {
	// Class is the query-class label used for latency histograms.
	Class() string
	// Signature is the result-cache key; it must encode every parameter
	// that affects the result.
	Signature() string
	// Table is the table the query reads (cache invalidation scope).
	Table() string
	// Run executes the query against db.
	Run(db *relstore.DB) (Result, error)
}

// Result is the uniform result envelope of a served query.  Exactly one of
// Objects/Bins is populated, depending on the query class; Stats always is.
type Result struct {
	Objects []Object
	Bins    []MagnitudeBin
	Stats   Stats
}

// Query-class labels.
const (
	ClassCone      = "cone"
	ClassLookup    = "lookup"
	ClassFrame     = "frame"
	ClassHistogram = "maghist"
)

// Cone is a positional cone search: objects within RadiusDeg of (RA, Dec).
type Cone struct {
	RA, Dec, RadiusDeg float64
}

// Class implements Query.
func (q Cone) Class() string { return ClassCone }

// Table implements Query.
func (q Cone) Table() string { return catalog.TObjects }

// Signature encodes the exact cone parameters plus the cover depth the
// executor will use, so a change in cover policy can never alias two caches.
func (q Cone) Signature() string {
	return fmt.Sprintf("cone:%s:%s:%s:%d",
		strconv.FormatFloat(q.RA, 'g', -1, 64),
		strconv.FormatFloat(q.Dec, 'g', -1, 64),
		strconv.FormatFloat(q.RadiusDeg, 'g', -1, 64),
		htm.CoverDepth(q.RadiusDeg))
}

// Run implements Query.
func (q Cone) Run(db *relstore.DB) (Result, error) {
	objs, stats, err := ConeSearch(db, q.RA, q.Dec, q.RadiusDeg)
	return Result{Objects: objs, Stats: stats}, err
}

// ObjectLookup fetches one object by primary key.
type ObjectLookup struct {
	ObjectID int64
}

// Class implements Query.
func (q ObjectLookup) Class() string { return ClassLookup }

// Table implements Query.
func (q ObjectLookup) Table() string { return catalog.TObjects }

// Signature implements Query.
func (q ObjectLookup) Signature() string { return "lookup:" + strconv.FormatInt(q.ObjectID, 10) }

// Run implements Query.
func (q ObjectLookup) Run(db *relstore.DB) (Result, error) {
	obj, err := ObjectByID(db, q.ObjectID)
	res := Result{}
	res.Stats.RowsExamined = 1
	if obj != nil {
		res.Objects = []Object{*obj}
		res.Stats.RowsReturned = 1
		res.Stats.UsedIndex = true // primary-key hash probe
	}
	return res, err
}

// FrameObjects returns every object detected on one CCD frame.
type FrameObjects struct {
	FrameID int64
}

// Class implements Query.
func (q FrameObjects) Class() string { return ClassFrame }

// Table implements Query.
func (q FrameObjects) Table() string { return catalog.TObjects }

// Signature implements Query.
func (q FrameObjects) Signature() string { return "frame:" + strconv.FormatInt(q.FrameID, 10) }

// Run implements Query.
func (q FrameObjects) Run(db *relstore.DB) (Result, error) {
	objs, stats, err := ObjectsOnFrame(db, q.FrameID)
	sortObjects(objs)
	return Result{Objects: objs, Stats: stats}, err
}

// MagHistogram bins the whole objects table by magnitude.
type MagHistogram struct {
	BinWidth float64
}

// Class implements Query.
func (q MagHistogram) Class() string { return ClassHistogram }

// Table implements Query.
func (q MagHistogram) Table() string { return catalog.TObjects }

// Signature implements Query.
func (q MagHistogram) Signature() string {
	return "maghist:" + strconv.FormatFloat(q.BinWidth, 'g', -1, 64)
}

// Run implements Query.
func (q MagHistogram) Run(db *relstore.DB) (Result, error) {
	bins, err := MagnitudeHistogram(db, q.BinWidth)
	res := Result{Bins: bins}
	for _, b := range bins {
		res.Stats.RowsExamined += int(b.Count)
	}
	res.Stats.RowsReturned = len(bins)
	return res, err
}
