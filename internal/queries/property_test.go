package queries

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"skyloader/internal/catalog"
	"skyloader/internal/htm"
	"skyloader/internal/relstore"
	"skyloader/internal/tuning"
)

// randomCatalog builds a repository holding n objects scattered around a
// field centre, with the full parent chain satisfied and the htmid index
// built, inserting rows directly (no loader) so the test controls positions.
func randomCatalog(t testing.TB, rng *rand.Rand, n int, raBase, decBase, spread float64) *relstore.DB {
	t.Helper()
	db := relstore.MustOpen(catalog.NewSchema())
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 4); err != nil {
		t.Fatal(err)
	}
	ins := func(table string, cols []string, vals []relstore.Value) {
		if _, err := txn.Insert(table, cols, vals); err != nil {
			t.Fatalf("insert into %s: %v", table, err)
		}
	}
	ins(catalog.TObservations,
		[]string{"obs_id", "telescope_id", "mjd_start", "ra_center", "dec_center", "airmass", "filter_set"},
		[]relstore.Value{relstore.Int(1), relstore.Int(1), relstore.Float(53600), relstore.Float(raBase),
			relstore.Float(decBase), relstore.Float(1.2), relstore.Str("r")})
	ins(catalog.TCCDColumns,
		[]string{"ccd_col_id", "obs_id", "ccd_id", "ccd_number", "filter", "ra_center", "dec_center"},
		[]relstore.Value{relstore.Int(1), relstore.Int(1), relstore.Int(1), relstore.Int(1),
			relstore.Str("r"), relstore.Float(raBase), relstore.Float(decBase)})
	const frames = 4
	for f := int64(1); f <= frames; f++ {
		ins(catalog.TCCDFrames,
			[]string{"frame_id", "ccd_col_id", "frame_number", "mjd_start", "exposure_s"},
			[]relstore.Value{relstore.Int(f), relstore.Int(1), relstore.Int(f),
				relstore.Float(53600.1), relstore.Float(140)})
	}
	for i := 0; i < n; i++ {
		ra := raBase + (rng.Float64()-0.5)*spread
		dec := decBase + (rng.Float64()-0.5)*spread
		if ra < 0 {
			ra += 360
		}
		if ra >= 360 {
			ra -= 360
		}
		if dec > 89 {
			dec = 89
		}
		if dec < -89 {
			dec = -89
		}
		v := htm.FromRaDec(ra, dec)
		ins(catalog.TObjects,
			[]string{"object_id", "frame_id", "ra", "dec", "htmid", "cx", "cy", "cz", "mag"},
			[]relstore.Value{relstore.Int(int64(i + 1)), relstore.Int(1 + int64(i)%frames),
				relstore.Float(ra), relstore.Float(dec),
				relstore.Int(htm.MustLookup(ra, dec, htm.DefaultDepth)),
				relstore.Float(v.X), relstore.Float(v.Y), relstore.Float(v.Z),
				relstore.Float(14 + rng.Float64()*8)})
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tuning.ApplyIndexPolicy(db, tuning.HTMIDOnly); err != nil {
		t.Fatal(err)
	}
	return db
}

// bruteForceCone is the oracle: a full scan applying exactly the same
// distance filter and result ordering the indexed path uses.
func bruteForceCone(t testing.TB, db *relstore.DB, ra, dec, radius float64) []Object {
	t.Helper()
	ts := db.Schema().Table(catalog.TObjects)
	var out []Object
	err := db.ScanRef(catalog.TObjects, func(r relstore.Row) bool {
		obj := decodeObject(ts, r)
		if angularDistanceDeg(ra, dec, obj.RA, obj.Dec) <= radius {
			out = append(out, obj)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	sortObjects(out)
	return out
}

// TestConeSearchMatchesBruteForce is the property the serving layer's
// correctness rests on: the htmid trixel-range path returns exactly the same
// objects as a full-scan point-in-cone filter, for random catalogs and random
// cones (including cones near the poles and the RA wrap).
func TestConeSearchMatchesBruteForce(t *testing.T) {
	property := func(seed uint64) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		raBase := rng.Float64() * 360
		decBase := -80 + rng.Float64()*160
		spread := 0.5 + rng.Float64()*6
		db := randomCatalog(t, rng, 150+rng.Intn(150), raBase, decBase, spread)

		for c := 0; c < 4; c++ {
			ra := raBase + (rng.Float64()-0.5)*spread
			dec := decBase + (rng.Float64()-0.5)*spread
			if ra < 0 {
				ra += 360
			}
			if ra >= 360 {
				ra -= 360
			}
			radius := 0.02 + rng.Float64()*spread
			indexed, stats, err := ConeSearch(db, ra, dec, radius)
			if err != nil {
				t.Errorf("seed %d: cone search failed: %v", seed, err)
				return false
			}
			if !stats.UsedIndex {
				t.Errorf("seed %d: index path not taken", seed)
				return false
			}
			oracle := bruteForceCone(t, db, ra, dec, radius)
			if len(indexed) == 0 && len(oracle) == 0 {
				continue
			}
			if !reflect.DeepEqual(indexed, oracle) {
				t.Errorf("seed %d: cone (%.5f, %.5f, r=%.5f): index returned %d objects, oracle %d",
					seed, ra, dec, radius, len(indexed), len(oracle))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQueryInterfaceRoundTrip checks every Query implementation produces the
// same answer as its underlying one-shot function and carries a stable
// signature.
func TestQueryInterfaceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := randomCatalog(t, rng, 200, 120, -30, 3)

	queries := []Query{
		Cone{RA: 120, Dec: -30, RadiusDeg: 1.5},
		ObjectLookup{ObjectID: 7},
		ObjectLookup{ObjectID: 999_999},
		FrameObjects{FrameID: 2},
		MagHistogram{BinWidth: 0.5},
	}
	for _, q := range queries {
		if q.Table() != catalog.TObjects {
			t.Fatalf("%s: unexpected table %q", q.Class(), q.Table())
		}
		if q.Signature() == "" || q.Signature() != q.Signature() {
			t.Fatalf("%s: unstable signature", q.Class())
		}
		r1, err := q.Run(db)
		if err != nil {
			t.Fatalf("%s: %v", q.Class(), err)
		}
		r2, err := q.Run(db)
		if err != nil {
			t.Fatalf("%s rerun: %v", q.Class(), err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("%s: two runs over unchanged data disagree", q.Class())
		}
	}

	cone := Cone{RA: 120, Dec: -30, RadiusDeg: 1.5}
	res, err := cone.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	oracle := bruteForceCone(t, db, 120, -30, 1.5)
	if !reflect.DeepEqual(res.Objects, oracle) {
		t.Fatalf("Cone query and oracle disagree: %d vs %d objects", len(res.Objects), len(oracle))
	}
}
