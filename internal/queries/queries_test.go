package queries

import (
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

// loadedRepo loads one synthetic catalog file into a fresh repository with
// the given index policy and returns the database.
func loadedRepo(t *testing.T, policy tuning.IndexPolicy) *relstore.DB {
	t.Helper()
	kernel := des.NewKernel(2)
	db := relstore.MustOpen(catalog.NewSchema())
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tuning.ApplyIndexPolicy(db, policy); err != nil {
		t.Fatal(err)
	}
	server := sqlbatch.NewServer(kernel, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())
	file := catalog.Generate(catalog.GenSpec{SizeMB: 6, RowsPerMB: 80, Seed: 33, RunID: 1, IDBase: 1000})
	kernel.Spawn("loader", func(p *des.Proc) {
		conn := server.Connect(p)
		defer conn.Close()
		loader, err := core.NewLoader(conn, core.DefaultConfig())
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := loader.LoadFiles([]*catalog.File{file}); err != nil {
			t.Error(err)
		}
	})
	kernel.Run()
	return db
}

// anyObject returns one loaded object for use as a query target.
func anyObject(t *testing.T, db *relstore.DB) Object {
	t.Helper()
	ts := db.Schema().Table(catalog.TObjects)
	var obj Object
	found := false
	_ = db.Scan(catalog.TObjects, func(r relstore.Row) bool {
		obj = decodeObject(ts, r)
		found = true
		return false
	})
	if !found {
		t.Fatal("repository holds no objects")
	}
	return obj
}

func TestConeSearchWithIndex(t *testing.T) {
	db := loadedRepo(t, tuning.HTMIDOnly)
	target := anyObject(t, db)
	results, stats, err := ConeSearch(db, target.RA, target.Dec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.UsedIndex {
		t.Fatal("cone search did not use the htmid index")
	}
	if stats.TrixelsScanned == 0 {
		t.Fatal("no trixels scanned")
	}
	foundTarget := false
	for _, o := range results {
		if o.ObjectID == target.ObjectID {
			foundTarget = true
		}
		if d := angularDistanceDeg(target.RA, target.Dec, o.RA, o.Dec); d > 0.1+1e-9 {
			t.Fatalf("object %d at distance %v exceeds the radius", o.ObjectID, d)
		}
	}
	if !foundTarget {
		t.Fatal("cone search missed the object at its own centre")
	}
	if stats.RowsReturned != len(results) {
		t.Fatalf("stats.RowsReturned = %d, want %d", stats.RowsReturned, len(results))
	}
}

func TestConeSearchFullScanFallback(t *testing.T) {
	db := loadedRepo(t, tuning.NoIndexes)
	target := anyObject(t, db)
	results, stats, err := ConeSearch(db, target.RA, target.Dec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.UsedIndex {
		t.Fatal("no index exists, yet UsedIndex is true")
	}
	total, _ := db.Count(catalog.TObjects)
	if int64(stats.RowsExamined) != total {
		t.Fatalf("full scan examined %d rows, table has %d", stats.RowsExamined, total)
	}
	if len(results) == 0 {
		t.Fatal("fallback found nothing")
	}
}

func TestConeSearchIndexAndScanAgree(t *testing.T) {
	indexed := loadedRepo(t, tuning.HTMIDOnly)
	plain := loadedRepo(t, tuning.NoIndexes)
	target := anyObject(t, indexed)

	withIndex, _, err := ConeSearch(indexed, target.RA, target.Dec, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	withScan, _, err := ConeSearch(plain, target.RA, target.Dec, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	// Both repositories hold the same data (same generator seed), so the two
	// strategies must agree.
	if len(withIndex) != len(withScan) {
		t.Fatalf("index found %d objects, scan found %d", len(withIndex), len(withScan))
	}
	ids := map[int64]bool{}
	for _, o := range withScan {
		ids[o.ObjectID] = true
	}
	for _, o := range withIndex {
		if !ids[o.ObjectID] {
			t.Fatalf("object %d returned by index search but not by scan", o.ObjectID)
		}
	}
}

func TestConeSearchValidation(t *testing.T) {
	db := loadedRepo(t, tuning.HTMIDOnly)
	if _, _, err := ConeSearch(db, 10, 10, 0); err == nil {
		t.Fatal("zero radius should be rejected")
	}
	if _, _, err := ConeSearch(db, 10, 10, -1); err == nil {
		t.Fatal("negative radius should be rejected")
	}
}

func TestObjectByID(t *testing.T) {
	db := loadedRepo(t, tuning.HTMIDOnly)
	target := anyObject(t, db)
	obj, err := ObjectByID(db, target.ObjectID)
	if err != nil || obj == nil {
		t.Fatalf("lookup failed: %v %v", obj, err)
	}
	if obj.RA != target.RA || obj.Mag != target.Mag {
		t.Fatalf("lookup returned a different object: %+v vs %+v", obj, target)
	}
	missing, err := ObjectByID(db, 999_999_999)
	if err != nil || missing != nil {
		t.Fatalf("missing id should return nil, got %+v (%v)", missing, err)
	}
}

func TestObjectsOnFrame(t *testing.T) {
	db := loadedRepo(t, tuning.HTMIDOnly)
	target := anyObject(t, db)
	objs, stats, err := ObjectsOnFrame(db, target.FrameID)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) == 0 {
		t.Fatal("frame has no objects")
	}
	for _, o := range objs {
		if o.FrameID != target.FrameID {
			t.Fatalf("object %d belongs to frame %d", o.ObjectID, o.FrameID)
		}
	}
	if stats.RowsReturned != len(objs) {
		t.Fatalf("stats mismatch: %+v", stats)
	}
}

func TestMagnitudeHistogram(t *testing.T) {
	db := loadedRepo(t, tuning.HTMIDOnly)
	bins, err := MagnitudeHistogram(db, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) == 0 {
		t.Fatal("no bins")
	}
	var total int64
	last := bins[0].Low - 1
	for _, b := range bins {
		if b.Low <= last {
			t.Fatal("bins not sorted")
		}
		if b.High-b.Low != 1.0 {
			t.Fatalf("bin width wrong: %+v", b)
		}
		if b.Count <= 0 {
			t.Fatalf("empty bin reported: %+v", b)
		}
		total += b.Count
		last = b.Low
	}
	objects, _ := db.Count(catalog.TObjects)
	if total != objects {
		t.Fatalf("histogram counts %d objects, table has %d", total, objects)
	}
	if _, err := MagnitudeHistogram(db, 0); err == nil {
		t.Fatal("zero bin width should be rejected")
	}
}

func TestVariabilityCandidates(t *testing.T) {
	db := loadedRepo(t, tuning.HTMIDOnly)
	// At a very coarse match depth many objects share a trixel across
	// frames, so candidates must exist; at full depth there should be far
	// fewer (usually none).
	coarse, err := VariabilityCandidates(db, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse) == 0 {
		t.Fatal("no candidates at coarse depth")
	}
	fine, err := VariabilityCandidates(db, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(fine) > len(coarse) {
		t.Fatalf("finer matching produced more groups (%d) than coarse (%d)", len(fine), len(coarse))
	}
	if _, err := VariabilityCandidates(db, 0); err == nil {
		t.Fatal("invalid depth should be rejected")
	}
}

func TestConeCoverDepth(t *testing.T) {
	if d := coneCoverDepth(45); d != 0 {
		t.Fatalf("depth for 45 deg = %d", d)
	}
	small := coneCoverDepth(0.01)
	large := coneCoverDepth(1.0)
	if small <= large {
		t.Fatalf("smaller radii should map to deeper trixels: %d vs %d", small, large)
	}
	if small > 20 {
		t.Fatalf("depth %d exceeds object depth", small)
	}
}
