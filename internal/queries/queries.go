// Package queries implements the science-query side of the repository.
//
// The paper's repository serves two purposes: a warehouse for incrementally
// loaded data and "a query engine to support scientific research" (§4.5.1) —
// which is why the single-integer htmid index is the one secondary index kept
// during the intensive loading phase.  This package provides the typical
// queries astronomers run against a catalog repository (cone searches by
// position, magnitude statistics, object and frame detail lookups) and
// reports whether they could be answered through the htmid index or had to
// fall back to a full scan, making the loading-versus-querying index
// trade-off of Figure 8 concrete.
package queries

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"skyloader/internal/catalog"
	"skyloader/internal/htm"
	"skyloader/internal/relstore"
	"skyloader/internal/tuning"
)

// Stats describes the work performed by one query.
type Stats struct {
	// RowsExamined is the number of candidate rows inspected.
	RowsExamined int
	// RowsReturned is the number of rows satisfying the query.
	RowsReturned int
	// UsedIndex reports whether the htmid index served the query.
	UsedIndex bool
	// TrixelsScanned is the number of HTM trixel ranges probed (cone search).
	TrixelsScanned int
}

// Object is a decoded row of the objects table.
type Object struct {
	ObjectID int64
	FrameID  int64
	RA       float64
	Dec      float64
	HTMID    int64
	Mag      float64
}

// decodeObject converts a raw objects row.
func decodeObject(ts *relstore.TableSchema, r relstore.Row) Object {
	get := func(col string) relstore.Value { return r[ts.ColumnIndex(col)] }
	obj := Object{}
	if v := get("object_id"); v.Kind == relstore.KindInt {
		obj.ObjectID = v.I
	}
	if v := get("frame_id"); v.Kind == relstore.KindInt {
		obj.FrameID = v.I
	}
	if v := get("ra"); v.Kind == relstore.KindFloat {
		obj.RA = v.F
	}
	if v := get("dec"); v.Kind == relstore.KindFloat {
		obj.Dec = v.F
	}
	if v := get("htmid"); v.Kind == relstore.KindInt {
		obj.HTMID = v.I
	}
	if v := get("mag"); v.Kind == relstore.KindFloat {
		obj.Mag = v.F
	}
	return obj
}

// angularDistanceDeg returns the angular separation of two positions.
func angularDistanceDeg(ra1, dec1, ra2, dec2 float64) float64 {
	a := htm.FromRaDec(ra1, dec1)
	b := htm.FromRaDec(ra2, dec2)
	dot := a.X*b.X + a.Y*b.Y + a.Z*b.Z
	if dot > 1 {
		dot = 1
	}
	if dot < -1 {
		dot = -1
	}
	return math.Acos(dot) * 180 / math.Pi
}

// coneCoverDepth picks a coarse HTM depth whose trixels are comparable in
// size to the search radius.  It delegates to htm.CoverDepth so the search
// path and result-cache signatures always agree on the cover.
func coneCoverDepth(radiusDeg float64) int { return htm.CoverDepth(radiusDeg) }

// ConeSearch returns the objects within radiusDeg of (raDeg, decDeg), sorted
// by object id so the answer is deterministic and directly comparable across
// execution paths.
//
// When the htmid index exists, the search covers the cone with coarse HTM
// trixel ranges (htm.ConeCover), probes the index for each range of
// descendant ids, and filters candidates by exact angular distance.  Without
// the index it degrades to a full scan of the objects table — exactly the
// query-performance cost the paper accepts temporarily by delaying
// secondary-index builds.  Both paths apply the same exact-distance filter,
// so for identical table contents they return byte-identical results.
func ConeSearch(db *relstore.DB, raDeg, decDeg, radiusDeg float64) ([]Object, Stats, error) {
	if radiusDeg <= 0 {
		return nil, Stats{}, fmt.Errorf("queries: radius must be positive, got %v", radiusDeg)
	}
	ts := db.Schema().Table(catalog.TObjects)
	if ts == nil {
		return nil, Stats{}, fmt.Errorf("queries: schema has no objects table")
	}
	// fullScan is the index-free path: it answers when the index is absent,
	// or when it exists under the deferred policy mid-load (suspended until
	// Seal) and is missing the rows loaded so far.
	fullScan := func() ([]Object, Stats, error) {
		var stats Stats
		var out []Object
		err := db.ScanRef(catalog.TObjects, func(r relstore.Row) bool {
			stats.RowsExamined++
			obj := decodeObject(ts, r)
			if angularDistanceDeg(raDeg, decDeg, obj.RA, obj.Dec) <= radiusDeg {
				out = append(out, obj)
			}
			return true
		})
		sortObjects(out)
		stats.RowsReturned = len(out)
		return out, stats, err
	}

	index := db.Table(catalog.TObjects).Index(tuning.HTMIDIndexName)
	if index == nil || !index.Ready() {
		return fullScan()
	}

	var stats Stats
	var out []Object
	stats.UsedIndex = true
	depth := coneCoverDepth(radiusDeg)
	cover, err := htm.ConeCover(raDeg, decDeg, radiusDeg, depth)
	if err != nil {
		return nil, stats, err
	}

	seen := map[int64]bool{}
	for _, rg := range cover {
		// One merged range is one B-tree range probe, however many coarse
		// trixels it spans — TrixelsScanned prices probes, not area.
		stats.TrixelsScanned++
		ids := rg.DescendantRange(htm.DefaultDepth - depth)
		rows, err := db.RangeIndexed(catalog.TObjects, tuning.HTMIDIndexName,
			[]relstore.Value{relstore.Int(ids.Lo)}, []relstore.Value{relstore.Int(ids.Hi)}, 0)
		if errors.Is(err, relstore.ErrIndexNotReady) {
			// The index passed the Ready check above but a load phase opened
			// mid-query and suspended it (real-concurrency engine).  Restart
			// on the scan path instead of failing a query the fallback can
			// answer correctly.
			return fullScan()
		}
		if err != nil {
			return nil, stats, err
		}
		for _, r := range rows {
			obj := decodeObject(ts, r)
			if seen[obj.ObjectID] {
				continue
			}
			seen[obj.ObjectID] = true
			stats.RowsExamined++
			if angularDistanceDeg(raDeg, decDeg, obj.RA, obj.Dec) <= radiusDeg {
				out = append(out, obj)
			}
		}
	}
	sortObjects(out)
	stats.RowsReturned = len(out)
	return out, stats, nil
}

// sortObjects orders a result by object id so every execution path (index
// probe order, heap order, cached copy) yields the same byte sequence.
func sortObjects(objs []Object) {
	sort.Slice(objs, func(i, j int) bool { return objs[i].ObjectID < objs[j].ObjectID })
}

// ObjectByID returns the object with the given primary key, or nil.
func ObjectByID(db *relstore.DB, objectID int64) (*Object, error) {
	ts := db.Schema().Table(catalog.TObjects)
	row, err := db.LookupByPK(catalog.TObjects, []relstore.Value{relstore.Int(objectID)})
	if err != nil || row == nil {
		return nil, err
	}
	obj := decodeObject(ts, row)
	return &obj, nil
}

// ObjectsOnFrame returns every object detected on the given frame.
func ObjectsOnFrame(db *relstore.DB, frameID int64) ([]Object, Stats, error) {
	ts := db.Schema().Table(catalog.TObjects)
	frameIdx := ts.ColumnIndex("frame_id")
	var out []Object
	var stats Stats
	err := db.ScanRef(catalog.TObjects, func(r relstore.Row) bool {
		stats.RowsExamined++
		if v := r[frameIdx]; v.Kind == relstore.KindInt && v.I == frameID {
			out = append(out, decodeObject(ts, r))
		}
		return true
	})
	stats.RowsReturned = len(out)
	return out, stats, err
}

// MagnitudeBin is one bin of a magnitude histogram.
type MagnitudeBin struct {
	Low   float64
	High  float64
	Count int64
}

// MagnitudeHistogram bins the objects table by magnitude.  binWidth must be
// positive; bins with no objects are omitted.
func MagnitudeHistogram(db *relstore.DB, binWidth float64) ([]MagnitudeBin, error) {
	if binWidth <= 0 {
		return nil, fmt.Errorf("queries: bin width must be positive, got %v", binWidth)
	}
	ts := db.Schema().Table(catalog.TObjects)
	magIdx := ts.ColumnIndex("mag")
	counts := map[int64]int64{}
	err := db.ScanRef(catalog.TObjects, func(r relstore.Row) bool {
		if v := r[magIdx]; v.Kind == relstore.KindFloat {
			counts[int64(math.Floor(v.F/binWidth))]++
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	var keys []int64
	for k := range counts {
		keys = append(keys, k)
	}
	// Insertion sort keeps this dependency-free and the key count is small.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := make([]MagnitudeBin, 0, len(keys))
	for _, k := range keys {
		out = append(out, MagnitudeBin{
			Low:   float64(k) * binWidth,
			High:  float64(k+1) * binWidth,
			Count: counts[k],
		})
	}
	return out, nil
}

// VariabilityCandidates returns object ids observed on more than one frame at
// (approximately) the same position — the time-domain science the synoptic
// Palomar-Quest survey exists for.  Positions are matched by sharing an HTM
// trixel at matchDepth.
func VariabilityCandidates(db *relstore.DB, matchDepth int) (map[int64][]int64, error) {
	if matchDepth <= 0 || matchDepth > htm.DefaultDepth {
		return nil, fmt.Errorf("queries: match depth %d out of range", matchDepth)
	}
	ts := db.Schema().Table(catalog.TObjects)
	htmIdx := ts.ColumnIndex("htmid")
	idIdx := ts.ColumnIndex("object_id")
	frameIdx := ts.ColumnIndex("frame_id")
	shift := uint(2 * (htm.DefaultDepth - matchDepth))

	type member struct {
		objectID int64
		frameID  int64
	}
	groups := map[int64][]member{}
	err := db.ScanRef(catalog.TObjects, func(r relstore.Row) bool {
		hv, ov, fv := r[htmIdx], r[idIdx], r[frameIdx]
		if hv.Kind != relstore.KindInt || ov.Kind != relstore.KindInt || fv.Kind != relstore.KindInt {
			return true
		}
		id, oid, fid := hv.I, ov.I, fv.I
		key := id >> shift
		groups[key] = append(groups[key], member{objectID: oid, frameID: fid})
		return true
	})
	if err != nil {
		return nil, err
	}
	out := map[int64][]int64{}
	for key, members := range groups {
		frames := map[int64]bool{}
		var ids []int64
		for _, m := range members {
			frames[m.frameID] = true
			ids = append(ids, m.objectID)
		}
		if len(frames) > 1 {
			out[key] = ids
		}
	}
	return out, nil
}
