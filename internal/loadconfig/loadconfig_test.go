package loadconfig

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/parallel"
	"skyloader/internal/relstore"
	"skyloader/internal/tuning"
)

func TestDefaultIsValid(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default configuration invalid: %v", err)
	}
	if cfg.BatchSize != 40 || cfg.ArraySize != 1000 || cfg.Loaders != 5 {
		t.Fatalf("defaults do not match the paper's production settings: %+v", cfg)
	}
	if cfg.IndexPolicyValue() != tuning.HTMIDOnly {
		t.Fatalf("default index policy = %v", cfg.IndexPolicyValue())
	}
}

func TestParseOverridesAndDefaults(t *testing.T) {
	doc := `{
		"batch_size": 50,
		"per_table_array_size": {"objects": 2000, "object_fingers": 4000},
		"loaders": 7,
		"assignment": "static",
		"index_policy": "htmid+composite",
		"cache_pages": 4096
	}`
	cfg, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BatchSize != 50 || cfg.ArraySize != 1000 {
		t.Fatalf("override/default mix wrong: %+v", cfg)
	}
	if cfg.PerTableArraySize[catalog.TObjects] != 2000 {
		t.Fatalf("per-table sizes missing: %+v", cfg.PerTableArraySize)
	}
	if cfg.Loaders != 7 {
		t.Fatalf("loaders = %d", cfg.Loaders)
	}
	cc := cfg.ClusterConfig()
	if cc.Assignment != parallel.Static || cc.Loaders != 7 {
		t.Fatalf("cluster config: %+v", cc)
	}
	lc := cfg.LoaderConfig()
	if lc.BatchSize != 50 || lc.PerTableArraySize[catalog.TObjectFingers] != 4000 || !lc.ChargeStaging {
		t.Fatalf("loader config: %+v", lc)
	}
	if cfg.IndexPolicyValue() != tuning.HTMIDPlusComposite {
		t.Fatalf("index policy = %v", cfg.IndexPolicyValue())
	}
	if cfg.DBConfig().CachePages != 4096 {
		t.Fatalf("db config cache = %d", cfg.DBConfig().CachePages)
	}
	if !cfg.ServerConfig().SeparateRAID {
		t.Fatal("default RAID separation lost")
	}
}

func TestParseRejectsUnknownFieldsAndBadValues(t *testing.T) {
	cases := []string{
		`{"no_such_field": 1}`,
		`{"batch_size": 0}`,
		`{"batch_size": -3}`,
		`{"array_size": 0}`,
		`{"batch_size": 5000, "array_size": 1000}`,
		`{"loaders": 0}`,
		`{"assignment": "round-robin"}`,
		`{"index_policy": "everything"}`,
		`{"per_table_array_size": {"objects": -1}}`,
		`{"commit_every_batches": -1}`,
		`{"cache_pages": -5}`,
		`not json at all`,
	}
	for i, doc := range cases {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d (%s): expected an error", i, doc)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig := Default()
	orig.BatchSize = 45
	orig.Loaders = 6
	orig.PerTableArraySize = map[string]int{catalog.TObjects: 1500}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.BatchSize != 45 || back.Loaders != 6 || back.PerTableArraySize[catalog.TObjects] != 1500 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestLoadFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.json")
	doc := `{"batch_size": 30, "loaders": 3, "separate_raid": false}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BatchSize != 30 || cfg.Loaders != 3 {
		t.Fatalf("loaded config: %+v", cfg)
	}
	if cfg.ServerConfig().SeparateRAID {
		t.Fatal("separate_raid=false not honoured")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestAssignmentAndPolicyAliases(t *testing.T) {
	aliases := map[string]tuning.IndexPolicy{
		"none": tuning.NoIndexes, "no-indexes": tuning.NoIndexes,
		"htmid": tuning.HTMIDOnly, "htmid-only": tuning.HTMIDOnly, "int": tuning.HTMIDOnly,
		"htmid+composite": tuning.HTMIDPlusComposite, "all": tuning.HTMIDPlusComposite,
	}
	for alias, want := range aliases {
		cfg := Default()
		cfg.IndexPolicy = alias
		if err := cfg.Validate(); err != nil {
			t.Errorf("alias %q rejected: %v", alias, err)
		}
		if got := cfg.IndexPolicyValue(); got != want {
			t.Errorf("alias %q -> %v, want %v", alias, got, want)
		}
	}
	cfg := Default()
	cfg.Assignment = "DYNAMIC"
	if cc := cfg.ClusterConfig(); cc.Assignment != parallel.Dynamic {
		t.Fatal("case-insensitive assignment broken")
	}
}

func TestIndexBuildField(t *testing.T) {
	cfg := Default()
	if cfg.BuildPolicyValue() != relstore.IndexImmediate {
		t.Fatalf("default index_build = %v, want immediate", cfg.BuildPolicyValue())
	}
	if cfg.ClusterConfig().SealAfterLoad {
		t.Fatal("default campaign must not seal")
	}
	parsed, err := Parse(strings.NewReader(`{"index_build": "deferred"}`))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.BuildPolicyValue() != relstore.IndexDeferred {
		t.Fatalf("index_build = %v, want deferred", parsed.BuildPolicyValue())
	}
	if !parsed.ClusterConfig().SealAfterLoad {
		t.Fatal("deferred campaign must enable the seal phase")
	}
	if _, err := Parse(strings.NewReader(`{"index_build": "sometimes"}`)); err == nil {
		t.Fatal("bad index_build accepted")
	}
}
