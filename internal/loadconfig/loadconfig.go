// Package loadconfig implements the configuration-file support the paper
// lists as future work (§4.3, §7): "The use of configuration files to control
// array-set initialization will not only lower client memory requirements,
// but also make the framework more adaptable for use with data sets other
// than the Palomar-Quest sky survey."
//
// A load configuration is a JSON document that fully describes one loading
// campaign: the loader tunables (batch size, default and per-table array
// sizes, memory high-water mark, commit policy), the degree of parallelism
// and assignment policy, and the database tuning profile (index policy, cache
// size, RAID separation).  cmd/skyload accepts it through the -config flag.
package loadconfig

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"skyloader/internal/core"
	"skyloader/internal/parallel"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

// FileConfig is the on-disk (JSON) representation of a loading campaign.
type FileConfig struct {
	// Loader tunables (§4.2, §4.3).
	BatchSize            int            `json:"batch_size"`
	ArraySize            int            `json:"array_size"`
	PerTableArraySize    map[string]int `json:"per_table_array_size,omitempty"`
	MemoryHighWaterBytes int64          `json:"memory_high_water_bytes,omitempty"`
	CommitEveryBatches   int            `json:"commit_every_batches"`
	RecordProvenance     bool           `json:"record_provenance"`

	// Parallelism (§4.4).
	Loaders    int    `json:"loaders"`
	Assignment string `json:"assignment"` // "dynamic" or "static"

	// Database tuning (§4.5).
	IndexPolicy string `json:"index_policy"` // "none", "htmid", "htmid+composite"
	// IndexBuild selects the engine maintenance policy for those indices:
	// "immediate" (default, per-batch maintenance) or "deferred" (suspend
	// during the load, bulk-build at the end-of-load Seal — Figure 8's
	// drop-and-rebuild lever).
	IndexBuild   string `json:"index_build,omitempty"`
	CachePages   int    `json:"cache_pages"`
	SeparateRAID *bool  `json:"separate_raid,omitempty"`

	// Ingest modes (§4.5.2 analogue; see PERFORMANCE.md, "Ingest modes").
	// GroupCommitWindowMS > 0 enables group commit: concurrent committers
	// share one WAL sync per window.  BatchLockChunk > 0 makes InsertBatch
	// apply its rows in sub-chunks of that many rows, yielding the table
	// write lock between chunks so readers are not starved.  Both default to
	// off, which preserves the seed's commit and locking behavior exactly.
	GroupCommitWindowMS   float64 `json:"group_commit_window_ms,omitempty"`
	GroupCommitMaxWaiters int     `json:"group_commit_max_waiters,omitempty"`
	BatchLockChunk        int     `json:"batch_lock_chunk,omitempty"`

	// Simulation scale.
	RowsPerMB int   `json:"rows_per_mb,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
}

// Default returns the production SkyLoader campaign configuration: batch 40,
// array 1000, 5 loaders with dynamic assignment, htmid index only, small
// cache, separated RAID devices, commits at file boundaries.
func Default() FileConfig {
	sep := true
	return FileConfig{
		BatchSize:          40,
		ArraySize:          1000,
		CommitEveryBatches: 0,
		Loaders:            5,
		Assignment:         "dynamic",
		IndexPolicy:        "htmid",
		CachePages:         1024,
		SeparateRAID:       &sep,
		RowsPerMB:          100,
		Seed:               1,
	}
}

// Parse reads a JSON configuration, filling unset fields from Default and
// validating the result.
func Parse(r io.Reader) (FileConfig, error) {
	cfg := Default()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return FileConfig{}, fmt.Errorf("loadconfig: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return FileConfig{}, err
	}
	return cfg, nil
}

// Load reads and parses a configuration file from disk.
func Load(path string) (FileConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return FileConfig{}, fmt.Errorf("loadconfig: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Write serializes the configuration as indented JSON.
func (c FileConfig) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Validate checks ranges and enumerations.
func (c FileConfig) Validate() error {
	var problems []string
	if c.BatchSize <= 0 {
		problems = append(problems, "batch_size must be positive")
	}
	if c.ArraySize <= 0 {
		problems = append(problems, "array_size must be positive")
	}
	if c.BatchSize > c.ArraySize {
		problems = append(problems, "batch_size is typically much smaller than array_size (paper §4.2)")
	}
	for table, n := range c.PerTableArraySize {
		if n <= 0 {
			problems = append(problems, fmt.Sprintf("per_table_array_size[%s] must be positive", table))
		}
	}
	if c.MemoryHighWaterBytes < 0 {
		problems = append(problems, "memory_high_water_bytes must not be negative")
	}
	if c.CommitEveryBatches < 0 {
		problems = append(problems, "commit_every_batches must not be negative")
	}
	if c.Loaders <= 0 {
		problems = append(problems, "loaders must be positive")
	}
	if _, err := c.assignment(); err != nil {
		problems = append(problems, err.Error())
	}
	if _, err := c.indexPolicy(); err != nil {
		problems = append(problems, err.Error())
	}
	if _, err := c.buildPolicy(); err != nil {
		problems = append(problems, err.Error())
	}
	if c.CachePages < 0 {
		problems = append(problems, "cache_pages must not be negative")
	}
	if c.GroupCommitWindowMS < 0 {
		problems = append(problems, "group_commit_window_ms must not be negative")
	}
	if c.GroupCommitMaxWaiters < 0 {
		problems = append(problems, "group_commit_max_waiters must not be negative")
	}
	if c.BatchLockChunk < 0 {
		problems = append(problems, "batch_lock_chunk must not be negative")
	}
	if c.RowsPerMB < 0 {
		problems = append(problems, "rows_per_mb must not be negative")
	}
	if len(problems) > 0 {
		return fmt.Errorf("loadconfig: invalid configuration: %s", strings.Join(problems, "; "))
	}
	return nil
}

func (c FileConfig) assignment() (parallel.Assignment, error) {
	switch strings.ToLower(strings.TrimSpace(c.Assignment)) {
	case "", "dynamic":
		return parallel.Dynamic, nil
	case "static":
		return parallel.Static, nil
	default:
		return parallel.Dynamic, fmt.Errorf("assignment must be \"dynamic\" or \"static\", got %q", c.Assignment)
	}
}

func (c FileConfig) indexPolicy() (tuning.IndexPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(c.IndexPolicy)) {
	case "", "none", "no-indexes":
		return tuning.NoIndexes, nil
	case "htmid", "htmid-only", "int":
		return tuning.HTMIDOnly, nil
	case "htmid+composite", "all", "composite":
		return tuning.HTMIDPlusComposite, nil
	default:
		return tuning.NoIndexes, fmt.Errorf("index_policy must be none|htmid|htmid+composite, got %q", c.IndexPolicy)
	}
}

// LoaderConfig converts the campaign configuration into the core loader
// configuration.
func (c FileConfig) LoaderConfig() core.Config {
	return core.Config{
		BatchSize:            c.BatchSize,
		ArraySize:            c.ArraySize,
		PerTableArraySize:    c.PerTableArraySize,
		MemoryHighWaterBytes: c.MemoryHighWaterBytes,
		CommitEveryBatches:   c.CommitEveryBatches,
		RecordProvenance:     c.RecordProvenance,
		ChargeStaging:        true,
	}
}

// ClusterConfig converts the campaign configuration into the parallel
// coordinator configuration.  A deferred index_build turns on the cluster's
// end-of-load Seal phase.
func (c FileConfig) ClusterConfig() parallel.Config {
	assignment, _ := c.assignment()
	return parallel.Config{
		Loaders:       c.Loaders,
		Assignment:    assignment,
		Loader:        c.LoaderConfig(),
		SealAfterLoad: c.BuildPolicyValue() == relstore.IndexDeferred,
	}
}

func (c FileConfig) buildPolicy() (relstore.IndexPolicy, error) {
	p, err := relstore.ParseIndexPolicy(strings.ToLower(strings.TrimSpace(c.IndexBuild)))
	if err != nil {
		return relstore.IndexImmediate, fmt.Errorf("index_build must be immediate|deferred, got %q", c.IndexBuild)
	}
	return p, nil
}

// IndexPolicyValue returns the parsed index policy.
func (c FileConfig) IndexPolicyValue() tuning.IndexPolicy {
	p, _ := c.indexPolicy()
	return p
}

// BuildPolicyValue returns the parsed engine index maintenance policy.
func (c FileConfig) BuildPolicyValue() relstore.IndexPolicy {
	p, _ := c.buildPolicy()
	return p
}

// DBConfig converts the campaign configuration into the engine configuration.
func (c FileConfig) DBConfig() relstore.Config {
	cfg := relstore.DefaultConfig()
	if c.CachePages > 0 {
		cfg.CachePages = c.CachePages
	}
	if c.GroupCommitWindowMS > 0 {
		cfg.GroupCommitWindow = time.Duration(c.GroupCommitWindowMS * float64(time.Millisecond))
		cfg.GroupCommitMaxWaiters = c.GroupCommitMaxWaiters
	}
	if c.BatchLockChunk > 0 {
		cfg.BatchLockChunk = c.BatchLockChunk
	}
	return cfg
}

// ServerConfig converts the campaign configuration into the simulated server
// configuration.
func (c FileConfig) ServerConfig() sqlbatch.ServerConfig {
	cfg := sqlbatch.DefaultServerConfig()
	if c.SeparateRAID != nil {
		cfg.SeparateRAID = *c.SeparateRAID
	}
	return cfg
}
