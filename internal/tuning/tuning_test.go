package tuning

import (
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/relstore"
)

func newDB(t *testing.T) *relstore.DB {
	t.Helper()
	return relstore.MustOpen(catalog.NewSchema())
}

func indexNames(db *relstore.DB) []string {
	var names []string
	for _, ix := range db.AllIndexes() {
		names = append(names, ix.Name)
	}
	return names
}

func TestApplyIndexPolicies(t *testing.T) {
	db := newDB(t)
	if err := ApplyIndexPolicy(db, NoIndexes); err != nil {
		t.Fatal(err)
	}
	if n := len(indexNames(db)); n != 0 {
		t.Fatalf("NoIndexes left %d indexes", n)
	}
	if err := ApplyIndexPolicy(db, HTMIDOnly); err != nil {
		t.Fatal(err)
	}
	names := indexNames(db)
	if len(names) != 1 || names[0] != HTMIDIndexName {
		t.Fatalf("HTMIDOnly indexes = %v", names)
	}
	if err := ApplyIndexPolicy(db, HTMIDPlusComposite); err != nil {
		t.Fatal(err)
	}
	if n := len(indexNames(db)); n != 2 {
		t.Fatalf("HTMIDPlusComposite indexes = %v", indexNames(db))
	}
	// Applying a policy twice is idempotent.
	if err := ApplyIndexPolicy(db, HTMIDPlusComposite); err != nil {
		t.Fatal(err)
	}
	if n := len(indexNames(db)); n != 2 {
		t.Fatalf("idempotent apply broke indexes: %v", indexNames(db))
	}
	// Going back down drops the composite.
	if err := ApplyIndexPolicy(db, HTMIDOnly); err != nil {
		t.Fatal(err)
	}
	if n := len(indexNames(db)); n != 1 {
		t.Fatalf("downgrade left %v", indexNames(db))
	}
	if err := ApplyIndexPolicy(db, IndexPolicy(42)); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestIndexPolicyString(t *testing.T) {
	if NoIndexes.String() != "no-indexes" || HTMIDOnly.String() != "htmid-only" || HTMIDPlusComposite.String() != "htmid+composite" {
		t.Fatal("String names wrong")
	}
	if IndexPolicy(9).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}

func TestProfiles(t *testing.T) {
	prod := ProductionLoading()
	if prod.Indexes != HTMIDOnly || prod.CommitEveryBatches != 0 || !prod.SeparateRAID {
		t.Fatalf("production profile: %+v", prod)
	}
	unt := Untuned()
	if unt.Indexes != HTMIDPlusComposite || unt.CommitEveryBatches == 0 || unt.SeparateRAID {
		t.Fatalf("untuned profile: %+v", unt)
	}
	qs := QueryServing()
	if qs.CachePages <= prod.CachePages {
		t.Fatalf("query-serving cache should be larger: %+v", qs)
	}
	if prod.DBConfig().CachePages != prod.CachePages {
		t.Fatal("DBConfig does not carry cache size")
	}
	if unt.ServerConfig().SeparateRAID {
		t.Fatal("ServerConfig does not carry RAID layout")
	}
	db := newDB(t)
	if err := prod.Apply(db); err != nil {
		t.Fatal(err)
	}
	if n := len(indexNames(db)); n != 1 {
		t.Fatalf("Apply(production) indexes = %v", indexNames(db))
	}
}

func TestDeferredProfileAppliesEnginePolicy(t *testing.T) {
	db := newDB(t)
	prof := ProductionLoading()
	prof.Indexes = HTMIDPlusComposite
	prof.DeferredIndexBuild = true
	if prof.BuildPolicy() != relstore.IndexDeferred {
		t.Fatalf("BuildPolicy = %v, want deferred", prof.BuildPolicy())
	}
	if err := prof.Apply(db); err != nil {
		t.Fatal(err)
	}
	for _, ix := range db.AllIndexes() {
		if ix.Policy() != relstore.IndexDeferred {
			t.Fatalf("index %s policy = %v, want deferred", ix.Name, ix.Policy())
		}
		if !ix.Ready() {
			t.Fatalf("index %s not ready outside a load phase", ix.Name)
		}
	}
	// Options() carries the same policy into Open: indexes created through
	// the default CreateIndex inherit it.
	db2 := relstore.MustOpen(catalog.NewSchema(), prof.Options()...)
	if _, err := db2.CreateIndex(catalog.TObjects, "ix_probe", []string{"htmid"}, false); err != nil {
		t.Fatal(err)
	}
	if got := db2.Table(catalog.TObjects).Index("ix_probe").Policy(); got != relstore.IndexDeferred {
		t.Fatalf("default-created index policy = %v, want deferred", got)
	}
}

func TestApplyIndexPolicyKeepsDDLStatsClean(t *testing.T) {
	db := newDB(t)
	for _, p := range []IndexPolicy{NoIndexes, HTMIDOnly, HTMIDPlusComposite, HTMIDOnly} {
		if err := ApplyIndexPolicy(db, p); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.Stats(); st.IndexDDLFailures != 0 {
		t.Fatalf("IndexDDLFailures = %d after policy switches, want 0", st.IndexDDLFailures)
	}
}
