// Package tuning captures the database and system tuning knobs of §4.5 of the
// paper as named profiles that experiments and tools can apply to a
// repository database and server configuration: secondary-index policy,
// commit frequency, data-cache size, presorted input and RAID separation.
package tuning

import (
	"fmt"

	"skyloader/internal/catalog"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
)

// IndexPolicy selects which secondary indices are maintained while loading
// (§4.5.1, Figure 8).
type IndexPolicy int

const (
	// NoIndexes drops every secondary index during loading.
	NoIndexes IndexPolicy = iota
	// HTMIDOnly keeps the single-integer htmid index on objects (the one
	// index the production system maintained during intensive loading).
	HTMIDOnly
	// HTMIDPlusComposite also maintains the composite three-float
	// (ra, dec, mag) index — the configuration Figure 8 shows costing ~8.5%.
	HTMIDPlusComposite
)

// String names the index policy.
func (p IndexPolicy) String() string {
	switch p {
	case NoIndexes:
		return "no-indexes"
	case HTMIDOnly:
		return "htmid-only"
	case HTMIDPlusComposite:
		return "htmid+composite"
	default:
		return fmt.Sprintf("IndexPolicy(%d)", int(p))
	}
}

// Names of the indices created by ApplyIndexPolicy.
const (
	HTMIDIndexName     = "ix_objects_htmid"
	CompositeIndexName = "ix_objects_radecmag"
)

// ApplyIndexPolicy creates (or drops) the secondary indices on the objects
// table according to the policy, with immediate (per-row) maintenance — the
// engine's historical behaviour.
func ApplyIndexPolicy(db *relstore.DB, policy IndexPolicy) error {
	return ApplyIndexPolicyWith(db, policy, relstore.IndexImmediate)
}

// ApplyIndexPolicyWith creates the secondary indices the policy requires
// under the given engine maintenance policy.  With relstore.IndexDeferred the
// indices exist but are bulk-built at DB.Seal instead of being maintained per
// batch — the paper's "drop indexes while loading, rebuild afterwards" lever
// expressed through the engine's load-policy API.
func ApplyIndexPolicyWith(db *relstore.DB, policy IndexPolicy, build relstore.IndexPolicy) error {
	// Drop both indices if present, then create what the policy requires.
	// The existence check matters: DropIndex records every error in
	// DBStats.IndexDDLFailures, and a blind drop-if-present on a fresh
	// database would pollute that counter on every environment build.
	if t := db.Table(catalog.TObjects); t != nil {
		if t.Index(HTMIDIndexName) != nil {
			_ = db.DropIndex(catalog.TObjects, HTMIDIndexName)
		}
		if t.Index(CompositeIndexName) != nil {
			_ = db.DropIndex(catalog.TObjects, CompositeIndexName)
		}
	}
	switch policy {
	case NoIndexes:
		return nil
	case HTMIDOnly:
		_, err := db.CreateIndexWith(catalog.TObjects, HTMIDIndexName, []string{"htmid"}, false, build)
		return err
	case HTMIDPlusComposite:
		if _, err := db.CreateIndexWith(catalog.TObjects, HTMIDIndexName, []string{"htmid"}, false, build); err != nil {
			return err
		}
		_, err := db.CreateIndexWith(catalog.TObjects, CompositeIndexName, []string{"ra", "dec", "mag"}, false, build)
		return err
	default:
		return fmt.Errorf("tuning: unknown index policy %d", int(policy))
	}
}

// Profile bundles the tuning decisions of §4.5 into one named configuration.
type Profile struct {
	Name string
	// Indexes is the secondary-index policy during loading.
	Indexes IndexPolicy
	// CommitEveryBatches is the loader commit frequency (0 = end of file).
	CommitEveryBatches int
	// CachePages is the server data-cache size in pages.
	CachePages int
	// SeparateRAID spreads data/index/log over three devices.
	SeparateRAID bool
	// Presorted indicates the catalog files are sorted parent-before-child
	// (the §4.5.4 byproduct of extraction); the generator honours it.
	Presorted bool
	// DeferredIndexBuild selects relstore.IndexDeferred maintenance for the
	// profile's indices: the load runs inside DB.BeginLoad/DB.Seal and the
	// indices are bulk-built at Seal instead of per batch (Figure 8's
	// drop-and-rebuild lever).  False keeps immediate maintenance.
	DeferredIndexBuild bool
}

// ProductionLoading is the configuration the paper converged on for the
// catch-up loading phase: only the htmid index, very infrequent commits, a
// small data cache, separated RAID devices, presorted input.
func ProductionLoading() Profile {
	return Profile{
		Name:               "production-loading",
		Indexes:            HTMIDOnly,
		CommitEveryBatches: 0,
		CachePages:         1024,
		SeparateRAID:       true,
		Presorted:          true,
	}
}

// Untuned is the starting point the paper improved on: all indices maintained
// eagerly, frequent commits, a large data cache, a single I/O device.
func Untuned() Profile {
	return Profile{
		Name:               "untuned",
		Indexes:            HTMIDPlusComposite,
		CommitEveryBatches: 5,
		CachePages:         16384,
		SeparateRAID:       false,
		Presorted:          true,
	}
}

// QueryServing is the post-load configuration: all indices rebuilt and a
// large cache for query workloads.  Loading under it is slow by design.
func QueryServing() Profile {
	return Profile{
		Name:               "query-serving",
		Indexes:            HTMIDPlusComposite,
		CommitEveryBatches: 0,
		CachePages:         16384,
		SeparateRAID:       true,
		Presorted:          true,
	}
}

// DBConfig returns the relstore configuration implied by the profile.
func (p Profile) DBConfig() relstore.Config {
	cfg := relstore.DefaultConfig()
	cfg.CachePages = p.CachePages
	return cfg
}

// BuildPolicy returns the engine index maintenance policy the profile
// implies.
func (p Profile) BuildPolicy() relstore.IndexPolicy {
	if p.DeferredIndexBuild {
		return relstore.IndexDeferred
	}
	return relstore.IndexImmediate
}

// Options returns the relstore.Open options implied by the profile; it is
// the functional-options form of DBConfig plus the index build policy.
func (p Profile) Options() []relstore.Option {
	return []relstore.Option{
		relstore.WithConfig(p.DBConfig()),
		relstore.WithIndexPolicy(p.BuildPolicy()),
	}
}

// ServerConfig returns the sqlbatch server configuration implied by the
// profile.
func (p Profile) ServerConfig() sqlbatch.ServerConfig {
	cfg := sqlbatch.DefaultServerConfig()
	cfg.SeparateRAID = p.SeparateRAID
	return cfg
}

// Apply applies the profile's index policy (which indices exist, and under
// which maintenance policy) to an existing database.
func (p Profile) Apply(db *relstore.DB) error {
	return ApplyIndexPolicyWith(db, p.Indexes, p.BuildPolicy())
}
