// Error recovery: demonstrate the batch_row index-tracing recovery of §4.2
// and §4.3.  A catalog file is generated with a high rate of corrupted rows
// (duplicate keys, out-of-range values, missing values, orphaned references,
// malformed numbers); the loader must skip exactly the bad rows, keep every
// good row, and leave the repository referentially consistent — while the
// number of database calls grows as errors break batches apart.
//
// Run with:
//
//	go run ./examples/error_recovery
package main

import (
	"fmt"
	"log"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
)

func load(errorRate float64) (core.Stats, *relstore.DB) {
	db, err := relstore.Open(catalog.NewSchema(), relstore.WithConfig(relstore.DefaultConfig()))
	if err != nil {
		log.Fatal(err)
	}
	txn, _ := db.Begin()
	if err := catalog.SeedReference(txn, 16); err != nil {
		log.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		log.Fatal(err)
	}
	sched := exec.NewDES(des.NewKernel(9))
	server := sqlbatch.NewServerOn(sched, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())

	file := catalog.Generate(catalog.GenSpec{
		SizeMB:    40,
		Seed:      77,
		ErrorRate: errorRate,
		RunID:     1,
		IDBase:    10_000_000,
	})

	var stats core.Stats
	sched.Spawn("loader", func(w exec.Worker) {
		conn := server.ConnectWorker(w)
		defer conn.Close()
		cfg := core.DefaultConfig()
		cfg.RecordProvenance = true
		loader, err := core.NewLoader(conn, cfg)
		if err != nil {
			log.Fatal(err)
		}
		stats, err = loader.LoadFiles([]*catalog.File{file})
		if err != nil {
			log.Fatal(err)
		}
	})
	sched.Run()
	return stats, db
}

func main() {
	fmt.Println("error rate   rows loaded   skipped(db)   rejected(client)   db calls   virtual time")
	fmt.Println("----------   -----------   -----------   ----------------   --------   ------------")
	for _, rate := range []float64{0, 0.02, 0.10, 0.30} {
		stats, db := load(rate)
		orphans, _ := db.VerifyIntegrity()
		if orphans != 0 {
			log.Fatalf("error rate %.2f left %d orphans", rate, orphans)
		}
		fmt.Printf("%10.2f   %11d   %11d   %16d   %8d   %12s\n",
			rate, stats.RowsLoaded, stats.RowsSkipped, stats.ParseErrors, stats.DBCalls, stats.Elapsed.Round(1e6))
	}

	// Show the provenance trail recorded for the dirtiest run.
	stats, db := load(0.30)
	errRows, _ := db.Count(catalog.TLoadErrors)
	fmt.Printf("\nwith a 30%% error rate the loader recorded %d load_errors rows; examples:\n", errRows)
	shown := 0
	for _, s := range stats.Skipped {
		fmt.Printf("  line %5d  %-22s %s\n", s.SourceLine, s.Table, truncate(s.Reason, 80))
		shown++
		if shown == 5 {
			break
		}
	}
	fmt.Printf("\nevery remaining row loaded exactly once; the repository stays consistent because\n")
	fmt.Printf("rows are skipped individually and batches are repacked after each failure (Fig. 3).\n")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
