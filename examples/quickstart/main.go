// Quickstart: generate a small synthetic catalog file, stand up a simulated
// repository database, load the file with the SkyLoader bulk-loading engine
// (batch 40, array 1000 — the paper's production settings) and query the
// result.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

func main() {
	// 1. A synthetic catalog file standing in for one slice of a night:
	//    nominal 50 MB, scaled to 100 rows per MB.
	file := catalog.Generate(catalog.GenSpec{
		SizeMB:    50,
		Seed:      2005,
		ErrorRate: 0.005,
		RunID:     1,
		IDBase:    10_000_000,
	})
	fmt.Printf("generated %s: %d interleaved rows for %d tables\n",
		file.Name, file.DataRows, len(file.RowsByTable))

	// 2. The repository: the 23-table Palomar-Quest data model hosted by the
	//    embedded engine, with reference data seeded and the production
	//    index policy (htmid only) applied.
	db, err := relstore.Open(catalog.NewSchema(), relstore.WithConfig(relstore.DefaultConfig()))
	if err != nil {
		log.Fatal(err)
	}
	txn, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 16); err != nil {
		log.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := tuning.ApplyIndexPolicy(db, tuning.HTMIDOnly); err != nil {
		log.Fatal(err)
	}

	// 3. The simulated database server and one loader worker on the
	//    deterministic execution scheduler (swap exec.NewDES for
	//    exec.NewRealtime to run the same code on real goroutines — see
	//    examples/wallclock_load).
	sched := exec.NewDES(des.NewKernel(1))
	server := sqlbatch.NewServerOn(sched, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())

	var stats core.Stats
	sched.Spawn("loader", func(w exec.Worker) {
		conn := server.ConnectWorker(w)
		defer conn.Close()
		loader, err := core.NewLoader(conn, core.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		stats, err = loader.LoadFiles([]*catalog.File{file})
		if err != nil {
			log.Fatal(err)
		}
	})
	sched.Run()

	// 4. Results: loading statistics and a couple of queries.
	fmt.Printf("\nloaded %d rows (%d skipped, %d rejected client-side) in %s of virtual time\n",
		stats.RowsLoaded, stats.RowsSkipped, stats.ParseErrors, stats.Elapsed.Round(1e6))
	fmt.Printf("database calls: %d (batch size %d), commits: %d\n",
		stats.DBCalls, core.DefaultConfig().BatchSize, stats.Commits)

	objects, _ := db.Count(catalog.TObjects)
	fmt.Printf("\nobjects in the repository: %d\n", objects)

	agg, err := db.Aggregate(catalog.TObjects, "mag")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("magnitude range: %.2f .. %.2f (mean %.2f)\n", agg.Min, agg.Max, agg.Mean)

	// Query by position through the htmid index that was kept during loading.
	rows, visited, err := db.SelectEqualIndexed(catalog.TObjects, tuning.HTMIDIndexName, firstHTMID(db))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("objects sharing the first htmid: %d (B-tree nodes visited: %d)\n", len(rows), visited)

	orphans, _ := db.VerifyIntegrity()
	fmt.Printf("orphaned rows after load: %d\n", orphans)
}

// firstHTMID returns the htmid of the first object in heap order.
func firstHTMID(db *relstore.DB) []relstore.Value {
	var key []relstore.Value
	ts := db.Schema().Table(catalog.TObjects)
	idx := ts.ColumnIndex("htmid")
	_ = db.Scan(catalog.TObjects, func(r relstore.Row) bool {
		key = []relstore.Value{r[idx]}
		return false
	})
	return key
}
