// Tuning study: measure the effect of the §4.5 database and system tuning
// decisions on one 200 MB load — secondary-index policy, commit frequency and
// data-cache size — and print a small report comparing the untuned
// configuration with the production loading profile.
//
// Run with:
//
//	go run ./examples/tuning_study
package main

import (
	"fmt"
	"log"
	"os"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/metrics"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

// runOnce loads a 200 MB file under the given tuning profile and returns the
// loader statistics.
func runOnce(prof tuning.Profile) core.Stats {
	db, err := relstore.Open(catalog.NewSchema(), prof.Options()...)
	if err != nil {
		log.Fatal(err)
	}
	txn, _ := db.Begin()
	if err := catalog.SeedReference(txn, 16); err != nil {
		log.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := prof.Apply(db); err != nil {
		log.Fatal(err)
	}
	sched := exec.NewDES(des.NewKernel(4))
	server := sqlbatch.NewServerOn(sched, db, prof.ServerConfig(), sqlbatch.DefaultCostModel())

	file := catalog.Generate(catalog.GenSpec{
		SizeMB: 200, Seed: 31, ErrorRate: 0.002, RunID: 1, IDBase: 10_000_000,
	})

	var stats core.Stats
	sched.Spawn("loader", func(w exec.Worker) {
		conn := server.ConnectWorker(w)
		defer conn.Close()
		cfg := core.DefaultConfig()
		cfg.CommitEveryBatches = prof.CommitEveryBatches
		loader, err := core.NewLoader(conn, cfg)
		if err != nil {
			log.Fatal(err)
		}
		stats, err = loader.LoadFiles([]*catalog.File{file})
		if err != nil {
			log.Fatal(err)
		}
	})
	sched.Run()
	return stats
}

func main() {
	profiles := []tuning.Profile{
		tuning.Untuned(),
		tuning.QueryServing(),
		tuning.ProductionLoading(),
	}

	tbl := &metrics.Table{
		Title: "Effect of the §4.5 tuning decisions on a 200 MB load (virtual seconds)",
		Columns: []string{
			"profile", "indexes", "commit_every_batches", "cache_pages", "runtime_s", "commits",
		},
	}
	var runtimes []float64
	for _, prof := range profiles {
		stats := runOnce(prof)
		runtimes = append(runtimes, stats.Elapsed.Seconds())
		tbl.AddRow(prof.Name, prof.Indexes.String(), prof.CommitEveryBatches, prof.CachePages,
			stats.Elapsed.Seconds(), stats.Commits)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	best := metrics.ArgMin(runtimes)
	worst := metrics.ArgMax(runtimes)
	fmt.Printf("\n%s is %.1f%% faster than %s on this load, mirroring the paper's decision to\n",
		profiles[best].Name,
		metrics.PercentChange(runtimes[worst], runtimes[best]),
		profiles[worst].Name)
	fmt.Println("drop most secondary indices, commit rarely and keep the data cache small while in the")
	fmt.Println("intensive loading phase, then rebuild indices and enlarge the cache for query serving.")
}
