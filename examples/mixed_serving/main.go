// Mixed load+serve walkthrough: the repository answering science queries
// WHILE a night's catalog files are being bulk-loaded into it — the paper's
// dual-purpose system (§4.5.1) end to end.
//
// The run is deterministic: everything is co-scheduled on the discrete-event
// kernel, so loading, queueing and query service interleave in virtual time
// and one seed reproduces the same latency report every time.
//
// Run with: go run ./examples/mixed_serving
package main

import (
	"fmt"
	"log"
	"os"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/parallel"
	"skyloader/internal/relstore"
	"skyloader/internal/serve"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

func main() {
	const seed = 7

	// 1. A night of catalog files and a Zipf-hot query trace: a few popular
	//    sky fields and objects dominate, which is what makes the result
	//    cache effective.
	files := catalog.GenerateNight(catalog.NightSpec{
		TotalMB: 12, Files: 6, RowsPerMB: 100, Seed: seed, RunID: 1,
	})
	trace := serve.GenTrace(serve.TraceSpec{
		Queries:    800,
		Seed:       seed,
		ConeFrac:   0.4,
		Objects:    3000,
		IDBase:     100_000_000, // matches the first generated file
		Frames:     150,
		RatePerSec: 150,
	}.WithFootprint(files)) // cone fields on the files' actual sky footprints

	// 2. One database, one scheduler, two servers: the sqlbatch load server
	//    the cluster nodes connect to, and the query server with its worker
	//    pool, admission queue and epoch-invalidated result cache.
	sched := exec.NewDES(des.NewKernel(seed))
	prof := tuning.ProductionLoading() // htmid index only: the Figure 8 choice
	db := relstore.MustOpen(catalog.NewSchema(), prof.Options()...)
	txn, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 16); err != nil {
		log.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := prof.Apply(db); err != nil {
		log.Fatal(err)
	}
	loadServer := sqlbatch.NewServerOn(sched, db, prof.ServerConfig(), sqlbatch.DefaultCostModel())
	queryServer := serve.NewServer(sched, db, serve.Config{
		Workers:    4,
		QueueDepth: 32,
	})

	// 3. Run the mixed scenario: 3 loader nodes race 800 queries.
	res, err := serve.RunMixed(loadServer, files, parallel.Config{
		Loaders: 3,
		Loader:  core.Config{BatchSize: 40, ArraySize: 1000, ChargeStaging: true},
	}, queryServer, trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("loaded %d rows from %d files in %s of virtual time (%.3f MB/s)\n",
		res.Load.Total.RowsLoaded, res.Load.Total.Files,
		res.Load.WallTime.Round(1e6), res.Load.ThroughputMBps)
	fmt.Printf("served %d queries meanwhile; uncacheable dirty-read answers: %d\n\n",
		res.Serve.Served, res.Serve.Unstable)
	if err := res.Serve.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	orphans, _ := db.VerifyIntegrity()
	fmt.Printf("\norphaned rows after the mixed run: %d\n", orphans)
}
