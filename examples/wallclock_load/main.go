// Wallclock load: run the SkyLoader cluster as real goroutines on the
// real-concurrency execution layer, and compare it against (a) the same
// cluster with a single loader, and (b) the deterministic virtual-time
// prediction of the discrete-event simulation.
//
// This is the demo of the execution abstraction introduced in internal/exec:
// the same parallel.Run coordinator, sqlbatch server and relstore engine run
// in both modes; only the scheduler differs.  On a multi-core host the
// N-loader wall-clock run should approach the §5.3 near-linear scaling for
// real — bounded by cores, per-table locks and the transaction-slot limit —
// while on a single core it measures the locking overhead of the concurrent
// engine.
//
// Run with:
//
//	go run ./examples/wallclock_load
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/exec"
	"skyloader/internal/parallel"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

const (
	nightMB   = 120
	nightFile = 24
	loaders   = 4
	seed      = 2005
)

func main() {
	fmt.Printf("host: %d CPUs (GOMAXPROCS %d)\n\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))

	// One synthetic observation night, split into files of varying size the
	// way the Palomar-Quest pipeline delivers them.
	files := catalog.GenerateNight(catalog.NightSpec{
		TotalMB: nightMB, Files: nightFile, Seed: seed, ErrorRate: 0.002, RunID: 1, Skew: 2,
	})
	fmt.Printf("generated night: %d files, %.0f nominal MB\n\n", len(files), float64(nightMB))

	// Baseline 1: the deterministic DES prediction of the N-loader cluster on
	// the paper's hardware.
	simRes := runCluster(exec.NewDES(des.NewKernel(seed)), files, loaders)
	fmt.Printf("virtual-time prediction (%d loaders, paper hardware): %s\n\n",
		loaders, simRes.WallTime.Round(time.Millisecond))

	// Baseline 2: one real loader goroutine (wall clock).
	oneRes := runCluster(exec.NewRealtime(exec.RealtimeConfig{Seed: seed}), files, 1)
	fmt.Printf("wall-clock, 1 loader:  %s (%.1f MB/s)\n",
		oneRes.WallTime.Round(time.Millisecond), oneRes.ThroughputMBps)

	// The real parallel run: N loader goroutines, dynamic file handoff over a
	// channel, per-table locks and blocking admission in the engine.
	parRes := runCluster(exec.NewRealtime(exec.RealtimeConfig{Seed: seed}), files, loaders)
	fmt.Printf("wall-clock, %d loaders: %s (%.1f MB/s)\n\n",
		loaders, parRes.WallTime.Round(time.Millisecond), parRes.ThroughputMBps)

	fmt.Println("per-node throughput (parallel run):")
	for _, n := range parRes.Nodes {
		el := n.FinishedAt - n.StartedAt
		mbps := 0.0
		if el > 0 {
			mbps = float64(n.Stats.NominalBytes) / 1e6 / el.Seconds()
		}
		fmt.Printf("  node %d: %2d files %6d rows in %8s  (%.1f MB/s)\n",
			n.Node, len(n.FilesDone), n.Stats.RowsLoaded, el.Round(time.Millisecond), mbps)
	}

	speedup := oneRes.WallTime.Seconds() / parRes.WallTime.Seconds()
	fmt.Printf("\nspeedup %d loaders vs 1 (wall clock):        %.2fx\n", loaders, speedup)
	fmt.Printf("speedup vs virtual-time prediction:          %.0fx faster than the simulated %s\n",
		simRes.WallTime.Seconds()/parRes.WallTime.Seconds(), simRes.WallTime.Round(time.Millisecond))

	if runtime.NumCPU() == 1 {
		fmt.Println("\n(single-CPU host: goroutines timeshare one core, so the parallel run")
		fmt.Println(" measures locking overhead rather than scaling; on an N-core host the")
		fmt.Println(" speedup approaches the paper's near-linear curve until the txn-slot")
		fmt.Println(" limit and lock contention flatten it)")
	}
}

// runCluster builds a fresh repository on sched and loads the night with n
// loaders.
func runCluster(sched exec.Scheduler, files []*catalog.File, n int) parallel.Result {
	db, err := relstore.Open(catalog.NewSchema(), relstore.WithConfig(relstore.DefaultConfig()))
	if err != nil {
		log.Fatal(err)
	}
	txn, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 16); err != nil {
		log.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := tuning.ApplyIndexPolicy(db, tuning.HTMIDOnly); err != nil {
		log.Fatal(err)
	}
	server := sqlbatch.NewServerOn(sched, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())
	res, err := parallel.Run(server, files, parallel.Config{
		Loaders: n, Assignment: parallel.Dynamic, Loader: core.DefaultConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if orphans, _ := db.VerifyIntegrity(); orphans != 0 {
		log.Fatalf("orphaned rows after load: %d", orphans)
	}
	return res
}
