// Nightly ingest: reproduce the production workflow of §4.4 — one
// observation's 28 catalog files of varying size, loaded by five concurrent
// loader processes with dynamic ("on the fly") file assignment, and compare
// it against a single-process load of the same night.
//
// Run with:
//
//	go run ./examples/nightly_ingest
package main

import (
	"fmt"
	"log"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/parallel"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

// newRepository builds a fresh simulated repository and server.
func newRepository(seed int64) (*sqlbatch.Server, error) {
	kernel := des.NewKernel(seed)
	db, err := relstore.Open(catalog.NewSchema(), relstore.WithConfig(relstore.DefaultConfig()))
	if err != nil {
		return nil, err
	}
	txn, err := db.Begin()
	if err != nil {
		return nil, err
	}
	if err := catalog.SeedReference(txn, 16); err != nil {
		return nil, err
	}
	if _, err := txn.Commit(); err != nil {
		return nil, err
	}
	if err := tuning.ApplyIndexPolicy(db, tuning.HTMIDOnly); err != nil {
		return nil, err
	}
	return sqlbatch.NewServer(kernel, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel()), nil
}

func main() {
	// One observation: ~700 nominal MB of catalog data split over 28 files
	// whose sizes vary, exactly the property that motivates dynamic
	// assignment.
	night := catalog.NightSpec{
		TotalMB:   700,
		Seed:      20051112,
		ErrorRate: 0.002,
		RunID:     1,
	}

	for _, cfg := range []struct {
		name    string
		loaders int
	}{
		{"single loader", 1},
		{"5 parallel loaders (production)", 5},
	} {
		server, err := newRepository(night.Seed)
		if err != nil {
			log.Fatal(err)
		}
		files := catalog.GenerateNight(night)
		res, err := parallel.Run(server, files, parallel.Config{
			Loaders:    cfg.loaders,
			Assignment: parallel.Dynamic,
			Loader:     core.DefaultConfig(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s wall time %9s   throughput %5.2f MB/s   lock waits %4d   stalls %d\n",
			cfg.name, res.WallTime.Round(1e9), res.ThroughputMBps, res.Total.LockWaits, res.Total.LongStalls)

		if cfg.loaders > 1 {
			fmt.Println("\nper-node balance (dynamic assignment):")
			for _, n := range res.Nodes {
				fmt.Printf("  node %d: %2d files, %8d rows, busy %s\n",
					n.Node, len(n.FilesDone), n.Stats.RowsLoaded, (n.FinishedAt - n.StartedAt).Round(1e9))
			}
			objects, _ := server.DB().Count(catalog.TObjects)
			orphans, _ := server.DB().VerifyIntegrity()
			fmt.Printf("\nrepository after ingest: %d objects, %d orphans\n", objects, orphans)
		}
	}
}
