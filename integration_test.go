// End-to-end integration tests exercising the whole pipeline the way the
// command-line tools do: generate catalog files, serialize them to disk, read
// them back, load them in parallel into a freshly seeded repository, and
// validate the result with queries and integrity checks.
package skyloader_test

import (
	"os"
	"path/filepath"
	"testing"

	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/experiments"
	"skyloader/internal/htm"
	"skyloader/internal/loadconfig"
	"skyloader/internal/parallel"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
	"skyloader/internal/tuning"
)

// newRepo builds a seeded repository and its simulated server.
func newRepo(t *testing.T, seed int64, policy tuning.IndexPolicy) *sqlbatch.Server {
	t.Helper()
	kernel := des.NewKernel(seed)
	db, err := relstore.Open(catalog.NewSchema(), relstore.WithConfig(relstore.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tuning.ApplyIndexPolicy(db, policy); err != nil {
		t.Fatal(err)
	}
	return sqlbatch.NewServer(kernel, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())
}

// TestEndToEndThroughFiles writes generated catalog files to disk, reads them
// back (as cmd/skyload does), loads them with three parallel loaders, and
// checks row counts, integrity and query results.
func TestEndToEndThroughFiles(t *testing.T) {
	dir := t.TempDir()
	night := catalog.GenerateNight(catalog.NightSpec{
		TotalMB: 30, RowsPerMB: 60, Seed: 41, ErrorRate: 0.01, RunID: 1, Files: 6,
	})

	// Serialize and re-read every file.
	var files []*catalog.File
	wantRows := 0
	for _, f := range night {
		path := filepath.Join(dir, f.Name)
		out, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteTo(out); err != nil {
			t.Fatal(err)
		}
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}

		in, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		recs, parseErrs := catalog.ReadRecords(in)
		in.Close()
		if len(parseErrs) != 0 {
			t.Fatalf("%s: parse errors: %v", path, parseErrs)
		}
		if len(recs) != f.DataRows {
			t.Fatalf("%s: %d records after round trip, want %d", path, len(recs), f.DataRows)
		}
		wantRows += len(recs)
		files = append(files, &catalog.File{
			Name:         path,
			Records:      recs,
			NominalBytes: f.NominalBytes,
			DataRows:     len(recs),
		})
	}

	srv := newRepo(t, 41, tuning.HTMIDOnly)
	res, err := parallel.Run(srv, files, parallel.Config{
		Loaders:    3,
		Assignment: parallel.Dynamic,
		Loader:     core.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.RowsRead != wantRows {
		t.Fatalf("rows read = %d, want %d", res.Total.RowsRead, wantRows)
	}
	if res.Total.RowsLoaded+res.Total.RowsSkipped+res.Total.ParseErrors != wantRows {
		t.Fatalf("row accounting: %+v", res.Total)
	}

	db := srv.DB()
	if orphans, _ := db.VerifyIntegrity(); orphans != 0 {
		t.Fatalf("orphans: %d", orphans)
	}
	if err := db.VerifyPrimaryKeys(); err != nil {
		t.Fatal(err)
	}

	// The htmid index kept during loading answers a positional query.
	ts := db.Schema().Table(catalog.TObjects)
	idx := ts.ColumnIndex("htmid")
	var someHTMID relstore.Value
	_ = db.Scan(catalog.TObjects, func(r relstore.Row) bool {
		someHTMID = r[idx]
		return false
	})
	if someHTMID.IsNull() {
		t.Fatal("no object carries an htmid")
	}
	if _, err := htm.Name(someHTMID.Int()); err != nil {
		t.Fatalf("stored htmid invalid: %v", err)
	}
	rows, _, err := db.SelectEqualIndexed(catalog.TObjects, tuning.HTMIDIndexName, []relstore.Value{someHTMID})
	if err != nil || len(rows) == 0 {
		t.Fatalf("indexed lookup failed: %d rows, err=%v", len(rows), err)
	}
}

// TestEndToEndCampaignConfig drives the same pipeline through a JSON campaign
// configuration, as `skyload -config` does.
func TestEndToEndCampaignConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.json")
	doc := `{
		"batch_size": 25,
		"array_size": 500,
		"loaders": 2,
		"assignment": "static",
		"index_policy": "none",
		"record_provenance": true
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	campaign, err := loadconfig.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	srv := newRepo(t, 7, campaign.IndexPolicyValue())
	files := []*catalog.File{
		catalog.Generate(catalog.GenSpec{SizeMB: 5, RowsPerMB: 60, Seed: 70, RunID: 1, IDBase: 1_000_000, ErrorRate: 0.02}),
		catalog.Generate(catalog.GenSpec{SizeMB: 5, RowsPerMB: 60, Seed: 71, RunID: 1, IDBase: 2_000_000}),
	}
	res, err := parallel.Run(srv, files, campaign.ClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.RowsLoaded == 0 {
		t.Fatal("campaign load produced nothing")
	}
	// Provenance was requested through the config file.
	if n, _ := srv.DB().Count(catalog.TLoadRuns); n != 2 {
		t.Fatalf("load_runs = %d, want one per file", n)
	}
	if res.Total.RowsSkipped > 0 {
		if n, _ := srv.DB().Count(catalog.TLoadErrors); int(n) != res.Total.RowsSkipped {
			t.Fatalf("load_errors = %d, want %d", n, res.Total.RowsSkipped)
		}
	}
	if orphans, _ := srv.DB().VerifyIntegrity(); orphans != 0 {
		t.Fatalf("orphans: %d", orphans)
	}
}

// TestExperimentsVerify runs the harness's own end-to-end verification, the
// same check exposed as `skybench -verify`.
func TestExperimentsVerify(t *testing.T) {
	if err := experiments.Verify(experiments.Config{Quick: true, RowsPerMB: 30, Seed: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicReplay loads the same night twice with the same seeds and
// expects identical virtual timings and row counts — the property that makes
// every experiment in EXPERIMENTS.md reproducible.
func TestDeterministicReplay(t *testing.T) {
	run := func() (int, int64, int64) {
		srv := newRepo(t, 99, tuning.NoIndexes)
		files := catalog.GenerateNight(catalog.NightSpec{
			TotalMB: 20, RowsPerMB: 60, Seed: 99, ErrorRate: 0.01, RunID: 1, Files: 5,
		})
		res, err := parallel.Run(srv, files, parallel.Config{
			Loaders: 3, Assignment: parallel.Dynamic, Loader: core.DefaultConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		rows, _ := srv.DB().Count(catalog.TObjects)
		return res.Total.RowsLoaded, int64(res.WallTime), rows
	}
	l1, w1, o1 := run()
	l2, w2, o2 := run()
	if l1 != l2 || w1 != w2 || o1 != o2 {
		t.Fatalf("replay diverged: (%d,%d,%d) vs (%d,%d,%d)", l1, w1, o1, l2, w2, o2)
	}
}
