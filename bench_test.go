// Benchmarks regenerating the paper's evaluation (§5), the headline claim and
// the ablation studies, plus micro-benchmarks of the core building blocks.
//
// Each BenchmarkFigure*/BenchmarkHeadline/BenchmarkAblation* iteration runs
// the corresponding experiment in a reduced "quick" configuration so the
// whole suite completes in a couple of minutes; the full sweeps (the exact
// series reported in EXPERIMENTS.md) are produced by `go run ./cmd/skybench
// -all`.  Virtual-time results are attached to the benchmark output with
// b.ReportMetric, so the paper-facing quantities (speedups, throughputs,
// overheads) appear directly in `go test -bench` output.
package skyloader_test

import (
	"testing"

	"skyloader/internal/arrayset"
	"skyloader/internal/catalog"
	"skyloader/internal/core"
	"skyloader/internal/des"
	"skyloader/internal/experiments"
	"skyloader/internal/htm"
	"skyloader/internal/metrics"
	"skyloader/internal/relstore"
	"skyloader/internal/sqlbatch"
)

// benchCfg is the reduced configuration used by the experiment benchmarks.
func benchCfg() experiments.Config {
	return experiments.Config{Quick: true, RowsPerMB: 40, Seed: 20051112}
}

// lastOf returns the final value of a numeric table column (0 when absent).
func lastOf(tbl *metrics.Table, col string) float64 {
	xs := tbl.Column(col)
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}

func meanOf(tbl *metrics.Table, col string) float64 {
	return metrics.Summarize(tbl.Column(col)).Mean
}

// --- Paper evaluation: one benchmark per figure ---------------------------

// BenchmarkFigure4BulkVsNonBulk regenerates Figure 4 (bulk vs. non-bulk
// loading, single process).  Reported metric: mean bulk speedup (paper: 7-9x).
func BenchmarkFigure4BulkVsNonBulk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanOf(tbl, "speedup"), "speedup")
		b.ReportMetric(lastOf(tbl, "bulk_runtime_s"), "bulk_vsec")
		b.ReportMetric(lastOf(tbl, "nonbulk_runtime_s"), "nonbulk_vsec")
	}
}

// BenchmarkFigure5BatchSize regenerates Figure 5 (effect of batch size on a
// 200 MB load).  Reported metric: runtime at the smallest and largest batch.
func BenchmarkFigure5BatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		rt := tbl.Column("runtime_s")
		b.ReportMetric(rt[0], "batch10_vsec")
		b.ReportMetric(rt[len(rt)-1], "batch60_vsec")
	}
}

// BenchmarkFigure6ArraySize regenerates Figure 6 (effect of array size).
// Reported metric: runtime at the smallest, optimal and largest array size.
func BenchmarkFigure6ArraySize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		rt := tbl.Column("runtime_s")
		b.ReportMetric(rt[0], "smallest_vsec")
		b.ReportMetric(rt[metrics.ArgMin(rt)], "best_vsec")
		b.ReportMetric(rt[len(rt)-1], "largest_vsec")
	}
}

// BenchmarkFigure7Parallelism regenerates Figure 7 (effect of parallelism on
// throughput).  Reported metrics: single-loader and best throughput in
// nominal MB per virtual second.
func BenchmarkFigure7Parallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		thr := tbl.Column("throughput_mb_s")
		b.ReportMetric(thr[0], "single_MBps")
		b.ReportMetric(thr[metrics.ArgMax(thr)], "peak_MBps")
	}
}

// BenchmarkFigure8Indices regenerates Figure 8 (effect of attribute indices).
// Reported metrics: mean overhead of the single-integer and composite
// three-float indices (paper: ~1.5% and ~8.5%).
func BenchmarkFigure8Indices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanOf(tbl, "int_overhead_pct"), "int_ovh_pct")
		b.ReportMetric(meanOf(tbl, "composite_overhead_pct"), "comp_ovh_pct")
	}
}

// BenchmarkFigure9DatabaseSize regenerates Figure 9 (effect of database
// size).  Reported metric: relative spread of runtimes across 50-300 GB
// (paper: flat).
func BenchmarkFigure9DatabaseSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure9(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		s := metrics.Summarize(tbl.Column("runtime_s"))
		spread := 0.0
		if s.Mean > 0 {
			spread = (s.Max - s.Min) / s.Mean * 100
		}
		b.ReportMetric(spread, "spread_pct")
		b.ReportMetric(s.Mean, "runtime_vsec")
	}
}

// BenchmarkHeadline40GB regenerates the headline claim (40 GB night: >20 h
// with the original pipeline vs <3 h with SkyLoader).  Reported metric: the
// reduction factor between the two configurations.
func BenchmarkHeadline40GB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Headline(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		hours := tbl.Column("runtime_h_40gb")
		if len(hours) == 2 && hours[1] > 0 {
			b.ReportMetric(hours[0]/hours[1], "reduction_x")
		}
	}
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblationAssignment compares dynamic vs. static file assignment on
// a skewed night (§4.4).
func BenchmarkAblationAssignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.AblationAssignment(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		wall := tbl.Column("wall_time_s")
		if len(wall) == 2 && wall[0] > 0 {
			b.ReportMetric(wall[1]/wall[0], "static_penalty_x")
		}
	}
}

// BenchmarkAblationCommitFrequency measures the §4.5.2 commit-frequency
// trade-off.
func BenchmarkAblationCommitFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.AblationCommitFrequency(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		rt := tbl.Column("runtime_s")
		if len(rt) >= 2 && rt[len(rt)-1] > 0 {
			b.ReportMetric(rt[0]/rt[len(rt)-1], "frequent_commit_penalty_x")
		}
	}
}

// BenchmarkAblationCacheSize measures the §4.5.5 data-cache-size effect.
func BenchmarkAblationCacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.AblationCacheSize(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		rt := tbl.Column("runtime_s")
		if len(rt) >= 2 && rt[0] > 0 {
			b.ReportMetric(rt[len(rt)-1]/rt[0], "large_cache_penalty_x")
		}
	}
}

// BenchmarkAblationErrorRate measures the §4.2 worst-case behaviour as the
// error rate grows.
func BenchmarkAblationErrorRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.AblationErrorRate(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		rt := tbl.Column("runtime_s")
		if len(rt) >= 2 && rt[0] > 0 {
			b.ReportMetric(rt[len(rt)-1]/rt[0], "dirty_penalty_x")
		}
	}
}

// BenchmarkAblationTwoPhase compares single-pass SkyLoader with the
// SDSS-style two-phase loader (§6).
func BenchmarkAblationTwoPhase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.AblationTwoPhase(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanOf(tbl, "two_phase_penalty_pct"), "two_phase_penalty_pct")
	}
}

// --- Micro-benchmarks of the building blocks -------------------------------

// BenchmarkBTreeInsert measures secondary-index maintenance cost per insert.
// The key is encoded into a reused buffer, as the table layer's scratch does.
func BenchmarkBTreeInsert(b *testing.B) {
	bt := relstore.NewBTree(32)
	key := make([]byte, 0, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key = relstore.AppendOrderedKey(key[:0], []relstore.Value{relstore.Int(int64(i * 2654435761 % 1000003))})
		bt.Insert(key, int64(i))
	}
}

// BenchmarkHTMLookup measures the per-object htmid computation performed
// during the transform step.
func BenchmarkHTMLookup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ra := float64(i%3600) / 10
		dec := float64(i%1700)/10 - 85
		if _, err := htm.Lookup(ra, dec, htm.DefaultDepth); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatalogGenerate measures synthetic catalog generation throughput.
func BenchmarkCatalogGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := catalog.Generate(catalog.GenSpec{SizeMB: 10, Seed: int64(i), ErrorRate: 0.01})
		if f.DataRows == 0 {
			b.Fatal("empty file")
		}
	}
}

// BenchmarkCatalogTransform measures parse+transform cost per catalog row.
func BenchmarkCatalogTransform(b *testing.B) {
	schema := catalog.NewSchema()
	tr := catalog.NewTransformer(schema)
	file := catalog.Generate(catalog.GenSpec{SizeMB: 20, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := file.Records[i%len(file.Records)]
		if _, err := tr.Transform(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArraySetAdd measures the client-side buffering cost per row.
func BenchmarkArraySetAdd(b *testing.B) {
	schema := catalog.NewSchema()
	set := arrayset.MustNew(schema, arrayset.Config{ArraySize: 1000})
	cols := []string{"object_id", "frame_id", "ra", "dec", "mag"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full, _, err := set.Add(catalog.TObjects, cols,
			[]relstore.Value{relstore.Int(int64(i)), relstore.Int(1), relstore.Float(10.0), relstore.Float(10.0), relstore.Float(18.0)}, i)
		if err != nil {
			b.Fatal(err)
		}
		if full {
			set.Drain()
		}
	}
}

// BenchmarkRelstoreInsert measures the engine's raw insert path (constraints,
// heap, PK hash, WAL, cache) without the simulation layer.
func BenchmarkRelstoreInsert(b *testing.B) {
	db := relstore.MustOpen(catalog.NewSchema())
	txn, err := db.Begin()
	if err != nil {
		b.Fatal(err)
	}
	if err := catalog.SeedReference(txn, 8); err != nil {
		b.Fatal(err)
	}
	cols := []string{"obs_id", "run_id", "telescope_id", "mjd_start", "ra_center", "dec_center", "airmass", "filter_set", "exposure_s"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals := []relstore.Value{relstore.Int(int64(i + 10)), relstore.Int(1), relstore.Int(1), relstore.Float(53600.5), relstore.Float(120.0), relstore.Float(10.0), relstore.Float(1.2), relstore.Str("R"), relstore.Float(140.0)}
		if _, err := txn.Insert(catalog.TObservations, cols, vals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoaderEndToEnd measures real (host) time to simulate loading one
// 10 MB catalog file with the full stack: generator, DES, engine, loader.
func BenchmarkLoaderEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kernel := des.NewKernel(int64(i))
		db := relstore.MustOpen(catalog.NewSchema())
		txn, _ := db.Begin()
		if err := catalog.SeedReference(txn, 8); err != nil {
			b.Fatal(err)
		}
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
		server := sqlbatch.NewServer(kernel, db, sqlbatch.DefaultServerConfig(), sqlbatch.DefaultCostModel())
		file := catalog.Generate(catalog.GenSpec{SizeMB: 10, Seed: int64(i), ErrorRate: 0.01, RunID: 1, IDBase: 1000})
		var stats core.Stats
		kernel.Spawn("loader", func(p *des.Proc) {
			conn := server.Connect(p)
			defer conn.Close()
			loader, err := core.NewLoader(conn, core.DefaultConfig())
			if err != nil {
				b.Error(err)
				return
			}
			stats, err = loader.LoadFiles([]*catalog.File{file})
			if err != nil {
				b.Error(err)
			}
		})
		kernel.Run()
		if stats.RowsLoaded == 0 {
			b.Fatal("nothing loaded")
		}
		b.ReportMetric(stats.Elapsed.Seconds(), "vsec_per_10MB")
	}
}

// BenchmarkDESEventThroughput measures raw simulation kernel throughput
// (events per second of host time).
func BenchmarkDESEventThroughput(b *testing.B) {
	kernel := des.NewKernel(1)
	kernel.Spawn("ticker", func(p *des.Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(1)
		}
	})
	b.ResetTimer()
	kernel.Run()
}
