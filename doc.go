// Package skyloader is a reproduction of "Optimized Data Loading for a
// Multi-Terabyte Sky Survey Repository" (Y. Dora Cai, Ruth Aydt, Robert J.
// Brunner, Supercomputing 2005): the SkyLoader framework for parallel bulk
// loading of the Palomar-Quest sky-survey catalog into a multi-table
// relational repository.
//
// The implementation lives under internal/:
//
//   - internal/core       — the bulk_loading / batch_row algorithm (Figure 3)
//   - internal/arrayset   — the array-set buffering structure (§4.3)
//   - internal/parallel   — the cluster coordinator with dynamic assignment (§4.4)
//   - internal/tuning     — the §4.5 database and system tuning profiles
//   - internal/relstore   — the embedded relational engine standing in for Oracle 10g,
//     safe for concurrent writer transactions
//   - internal/sqlbatch   — the JDBC-like batch client/server with the calibrated cost model
//   - internal/catalog    — the Palomar-Quest data model, file format, parser and generator
//   - internal/htm        — Hierarchical Triangular Mesh ids for object positions
//   - internal/des        — the deterministic discrete-event simulation kernel
//   - internal/exec       — the execution abstraction (Scheduler/Worker/Resource) with a
//     DES implementation and a goroutine-backed realtime implementation
//   - internal/experiments — regeneration of every figure of §5 plus ablations
//   - internal/queries    — the science-query side (cone search via HTM trixel ranges,
//     lookups, histograms) behind a Query interface with per-query work stats
//   - internal/serve      — the concurrent query-serving subsystem: worker pool on
//     exec.Scheduler, bounded admission with deadlines, sharded LRU result cache
//     invalidated by relstore commit epochs, per-class latency histograms, and the
//     mixed load+serve scenario
//
// The benchmarks in bench_test.go regenerate the paper's evaluation; the
// binaries under cmd/ (skygen, skyload, skybench, skyserve) expose the same
// functionality on the command line, and examples/ contains runnable
// walk-throughs.  See README.md, DESIGN.md and EXPERIMENTS.md.
//
// # Row representation and the zero-allocation insert path
//
// Column values move through the system as relstore.Value, a compact tagged
// struct (kind tag + int64 + float64 + string fields) rather than a boxed
// interface, so building and storing a row performs no per-value heap
// allocation.  Composite keys are encoded with relstore.AppendKey into
// reusable scratch buffers following the strconv append convention; hash-map
// probes use m[string(buf)], which the compiler evaluates without copying,
// and only keys that are actually stored materialize a string.  PERFORMANCE.md
// describes the conventions and records the measured effect (BENCH_rowpath.json
// holds the before/after numbers).
//
// # Execution modes
//
// Everything above the storage engine runs against internal/exec's Scheduler
// abstraction, which has two implementations:
//
//   - Deterministic DES mode (exec.NewDES): loaders, server CPUs, disks and
//     transaction slots are processes and resources on the discrete-event
//     kernel; at most one process runs at a time, time is virtual, and a seed
//     fully determines the trace.  All §5 figures regenerate in this mode.
//
//   - Wall-clock mode (exec.NewRealtime): every loader is a real goroutine,
//     resources block on FIFO condition queues, and the concurrent relstore
//     engine (per-table locks, atomic counters, per-transaction scratch
//     buffers, blocking admission) absorbs genuinely parallel writers.
//     `skyload -wallclock` and examples/wallclock_load report real elapsed
//     time next to the virtual-time prediction.
//
// PERFORMANCE.md documents when to use which mode and the scratch-buffer
// ownership rules that keep the insert path allocation-lean under
// concurrency; BENCH_concurrency.json records the measured numbers.
//
// # Load policies and the Open options API
//
// The storage engine is constructed with relstore.Open(schema, ...Option);
// functional options (WithCache, WithMaxConcurrentTxns, WithBTreeDegree,
// WithDirtyFlushPages, WithWALSync, WithIndexPolicy, WithConfig) subsume the
// positional Config struct and carry the load-lifecycle policies that Config
// cannot express.  relstore.NewDB and MustNewDB remain as deprecated
// wrappers: migrate NewDB(schema, cfg) to Open(schema, WithConfig(cfg)), or
// to the individual options when the config is built in place — zero-valued
// knobs keep their defaults either way, so the rewrite is mechanical.  New
// engine knobs are added as options only; Config is frozen.
//
// Every secondary index carries an IndexPolicy.  IndexImmediate (the
// default) maintains the index on every insert.  IndexDeferred participates
// in the load lifecycle — DB.BeginLoad suspends it, inserts skip it, and
// DB.Seal bulk-rebuilds it from a presorted key stream by packing B-tree
// leaves left to right (BTree.BuildFromSorted) — which is the paper's
// Figure 8 drop-indexes-while-loading lever as a supported engine mode.
// README.md ("Load policies") shows the workflow end to end, PERFORMANCE.md
// states the Seal ownership rules, and BENCH_indexbuild.json records the
// measured immediate-vs-deferred numbers.
package skyloader

// Version identifies this reproduction release.
const Version = "1.0.0"
